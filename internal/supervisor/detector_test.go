package supervisor

import (
	"math"
	"testing"
)

func TestPhiDetectorSteadyCadence(t *testing.T) {
	d := NewPhiDetector(8, 1, 32)
	for i := 1; i <= 20; i++ {
		d.Observe(float64(i))
	}
	if d.Last() != 20 {
		t.Fatalf("Last = %v, want 20", d.Last())
	}
	// Mean interval is 1s; the deadline sits threshold*ln10 means out.
	want := 20 + 8*math.Ln10
	if dl := d.Deadline(); math.Abs(dl-want) > 1e-9 {
		t.Errorf("Deadline = %v, want %v", dl, want)
	}
	// Phi is 0 at the heartbeat, grows linearly, and crosses the
	// threshold exactly at the deadline.
	if p := d.Phi(20); p != 0 {
		t.Errorf("Phi(last) = %v, want 0", p)
	}
	if p := d.Phi(d.Deadline()); math.Abs(p-8) > 1e-9 {
		t.Errorf("Phi(deadline) = %v, want threshold 8", p)
	}
	if d.Phi(21) >= d.Phi(22) {
		t.Error("Phi must grow with silence")
	}
}

func TestPhiDetectorAdaptsToCadence(t *testing.T) {
	// A workload that slows down (checkpoint pauses) must widen the
	// timeout instead of false-positiving.
	fast := NewPhiDetector(8, 1, 8)
	slow := NewPhiDetector(8, 1, 8)
	tf, ts := 0.0, 0.0
	for i := 0; i < 16; i++ {
		tf += 0.1
		fast.Observe(tf)
		ts += 10
		slow.Observe(ts)
	}
	fastMargin := fast.Deadline() - fast.Last()
	slowMargin := slow.Deadline() - slow.Last()
	if fastMargin >= slowMargin {
		t.Errorf("fast margin %v not tighter than slow margin %v", fastMargin, slowMargin)
	}
	// With the seed flushed from the window, margins track the cadence.
	if got, want := fastMargin, 8*math.Ln10*0.1; math.Abs(got-want) > 1e-9 {
		t.Errorf("fast margin = %v, want %v", got, want)
	}
}

func TestPhiDetectorSeedControlsFirstDeadline(t *testing.T) {
	d := NewPhiDetector(4, 2, 8)
	// No heartbeat yet: the seed interval alone sets the deadline.
	want := 4 * math.Ln10 * 2
	if dl := d.Deadline(); math.Abs(dl-want) > 1e-9 {
		t.Errorf("initial Deadline = %v, want %v", dl, want)
	}
}

func TestPhiDetectorDefaults(t *testing.T) {
	d := NewPhiDetector(0, 0, 0)
	if d.threshold != 8 || d.wmax != 32 || d.sum != 1 {
		t.Errorf("defaults = threshold %v window %v seed-sum %v", d.threshold, d.wmax, d.sum)
	}
	// Time running backwards must not corrupt the window, and must not
	// rewind the liveness mark: the rank was provably alive at t=5, so
	// a late-delivered t=3 heartbeat cannot reopen suspicion of the
	// interval before it.
	d.Observe(5)
	d.Observe(3)
	if d.Last() != 5 {
		t.Errorf("Last = %v after out-of-order observe, want monotonic 5", d.Last())
	}
	if d.Phi(4) != 0 {
		t.Error("Phi must stay 0 before the newest liveness mark")
	}
	if d.Phi(6) <= 0 {
		t.Error("Phi must be positive after silence")
	}
}

func TestPhiDetectorWindowOfOne(t *testing.T) {
	// wmax=1 keeps only the newest interval: the seed is evicted by the
	// first real interval and the timeout tracks the last gap alone.
	d := NewPhiDetector(8, 100, 1)
	d.Observe(2)
	d.Observe(3)
	want := 3 + 8*math.Ln10*1 // mean is exactly the last interval (1s)
	if dl := d.Deadline(); math.Abs(dl-want) > 1e-9 {
		t.Errorf("Deadline = %v, want %v", dl, want)
	}
}

func TestPhiDetectorDuplicateTimestamps(t *testing.T) {
	// A burst of heartbeats at one instant (message coalescing) must
	// not collapse the mean interval: zero-width gaps say nothing about
	// cadence. Before the fix each duplicate appended a 0 to the
	// window, dragging Deadline toward "now" and making the next normal
	// gap a false suspicion.
	d := NewPhiDetector(8, 1, 8)
	for i := 1; i <= 4; i++ {
		d.Observe(float64(i))
	}
	before := d.Deadline() - d.Last()
	for i := 0; i < 16; i++ {
		d.Observe(4) // duplicates: refresh liveness, no interval
	}
	after := d.Deadline() - d.Last()
	if math.Abs(after-before) > 1e-9 {
		t.Errorf("duplicate observes moved the margin: %v -> %v", before, after)
	}
	if d.Last() != 4 {
		t.Errorf("Last = %v, want 4", d.Last())
	}
}

func TestPhiDetectorDeadlineBeforeFirstHeartbeat(t *testing.T) {
	// Before any heartbeat the detector acts as if one arrived at t=0
	// with the seed cadence: Deadline is finite (a rank that never
	// checks in is eventually suspected) and Phi(0) starts at zero.
	d := NewPhiDetector(8, 2, 8)
	if d.Last() != 0 {
		t.Errorf("Last = %v before first heartbeat, want 0", d.Last())
	}
	if p := d.Phi(0); p != 0 {
		t.Errorf("Phi(0) = %v, want 0", p)
	}
	want := 8 * math.Ln10 * 2
	if dl := d.Deadline(); math.Abs(dl-want) > 1e-9 {
		t.Errorf("Deadline = %v, want seed-driven %v", dl, want)
	}
}
