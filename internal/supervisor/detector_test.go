package supervisor

import (
	"math"
	"testing"
)

func TestPhiDetectorSteadyCadence(t *testing.T) {
	d := NewPhiDetector(8, 1, 32)
	for i := 1; i <= 20; i++ {
		d.Observe(float64(i))
	}
	if d.Last() != 20 {
		t.Fatalf("Last = %v, want 20", d.Last())
	}
	// Mean interval is 1s; the deadline sits threshold*ln10 means out.
	want := 20 + 8*math.Ln10
	if dl := d.Deadline(); math.Abs(dl-want) > 1e-9 {
		t.Errorf("Deadline = %v, want %v", dl, want)
	}
	// Phi is 0 at the heartbeat, grows linearly, and crosses the
	// threshold exactly at the deadline.
	if p := d.Phi(20); p != 0 {
		t.Errorf("Phi(last) = %v, want 0", p)
	}
	if p := d.Phi(d.Deadline()); math.Abs(p-8) > 1e-9 {
		t.Errorf("Phi(deadline) = %v, want threshold 8", p)
	}
	if d.Phi(21) >= d.Phi(22) {
		t.Error("Phi must grow with silence")
	}
}

func TestPhiDetectorAdaptsToCadence(t *testing.T) {
	// A workload that slows down (checkpoint pauses) must widen the
	// timeout instead of false-positiving.
	fast := NewPhiDetector(8, 1, 8)
	slow := NewPhiDetector(8, 1, 8)
	tf, ts := 0.0, 0.0
	for i := 0; i < 16; i++ {
		tf += 0.1
		fast.Observe(tf)
		ts += 10
		slow.Observe(ts)
	}
	fastMargin := fast.Deadline() - fast.Last()
	slowMargin := slow.Deadline() - slow.Last()
	if fastMargin >= slowMargin {
		t.Errorf("fast margin %v not tighter than slow margin %v", fastMargin, slowMargin)
	}
	// With the seed flushed from the window, margins track the cadence.
	if got, want := fastMargin, 8*math.Ln10*0.1; math.Abs(got-want) > 1e-9 {
		t.Errorf("fast margin = %v, want %v", got, want)
	}
}

func TestPhiDetectorSeedControlsFirstDeadline(t *testing.T) {
	d := NewPhiDetector(4, 2, 8)
	// No heartbeat yet: the seed interval alone sets the deadline.
	want := 4 * math.Ln10 * 2
	if dl := d.Deadline(); math.Abs(dl-want) > 1e-9 {
		t.Errorf("initial Deadline = %v, want %v", dl, want)
	}
}

func TestPhiDetectorDefaults(t *testing.T) {
	d := NewPhiDetector(0, 0, 0)
	if d.threshold != 8 || d.wmax != 32 || d.sum != 1 {
		t.Errorf("defaults = threshold %v window %v seed-sum %v", d.threshold, d.wmax, d.sum)
	}
	// Time running backwards must not corrupt the window.
	d.Observe(5)
	d.Observe(3)
	if d.Last() != 3 {
		t.Errorf("Last = %v after out-of-order observe", d.Last())
	}
	if d.Phi(4) <= 0 {
		t.Error("Phi must be positive after silence")
	}
}
