// Package supervisor is the self-healing cluster runtime for the
// simulated Beowulf: it runs any of the Nektar solvers under automatic
// fault management, closing the loop the paper's operators closed by
// hand (notice the dead PC, swap it, restart from restart files).
//
// A supervised run adds one extra simulated rank — the monitor — to
// the solver's world. Solver ranks send a tiny heartbeat over the
// lossless control channel after every step; the monitor feeds a
// per-rank phi-accrual detector (detector.go) and, when a rank goes
// silent past the adaptive timeout, broadcasts a halt order, so every
// survivor stops at a consistent step boundary. The supervisor then
// identifies the failed ranks (crash unwinding, or the stall schedule
// for frozen-but-alive processes), moves them onto hot-spare nodes
// (simnet.SparePool), and relaunches the whole run from the last
// globally-committed checkpoint — repeating until completion or until
// the retry budget or the spare pool is exhausted, both of which
// return a structured *RetryError.
//
// A numerical-health watchdog rides the same step boundary: each rank
// samples its solver fields (Solver.HealthSample) and the ranks agree
// on a verdict with a one-flag Allreduce, so a NaN/Inf or a runaway
// field magnitude makes every rank stop at the same step — before the
// corrupt state can be staged into a checkpoint — and the run rolls
// back and retries, with a policy hook (WatchdogConfig.OnTrip) for
// reduced-dt strategies.
//
// Because solver arithmetic never depends on the virtual clock, a
// supervised run that survives any number of crashes, stalls, and
// rollbacks finishes bit-identical to a fault-free supervised run.
package supervisor

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"nektar/internal/ckpt"
	"nektar/internal/engine"
	"nektar/internal/mpi"
	"nektar/internal/policy"
	"nektar/internal/simnet"
)

// Solver is the engine's solver interface: the supervisor drives any
// solver through it (NS2D, NSF, and NSALE all implement it) and never
// switches on the concrete type.
type Solver = engine.Solver

// HeartbeatConfig tunes the failure detector.
type HeartbeatConfig struct {
	// Every is the heartbeat period in solver steps (default 1).
	Every int
	// InitialInterval primes the detector before the first heartbeat
	// (virtual seconds; default 1). Pick the expected step duration —
	// too large only delays the first possible detection.
	InitialInterval float64
	// Threshold is the phi level at which a silent rank becomes a
	// suspect (default 8).
	Threshold float64
	// Window is the detector's sliding interval window (default 32).
	Window int
}

// Trip is one watchdog trip: a rank whose fields failed the health
// check at a step.
type Trip struct {
	Attempt int
	Rank    int
	Step    int
	MaxAbs  float64
	Finite  bool
}

// WatchdogConfig tunes the numerical-health watchdog.
type WatchdogConfig struct {
	// Disabled turns the watchdog off entirely.
	Disabled bool
	// Every is the sampling period in solver steps (default 1).
	Every int
	// MaxAbs trips the watchdog when any field magnitude exceeds it
	// (0 = no magnitude limit; NaN/Inf always trip).
	MaxAbs float64
	// MaxGrowth trips when the field magnitude exceeds MaxGrowth times
	// the attempt's first sample (0 = no growth limit) — a cheap CFL /
	// energy-divergence guard.
	MaxGrowth float64
	// OnTrip is called once per failed attempt caused by a watchdog
	// trip, before the rollback rerun — the hook where a production
	// policy would reduce dt or tighten solver tolerances.
	OnTrip func(Trip)
}

// Config describes a supervised run.
type Config struct {
	// Procs is the solver's rank count; the monitor occupies one extra
	// simulated rank (id Procs) on its own head node.
	Procs int
	// Spares is the number of hot-spare nodes behind the initial
	// placement.
	Spares int
	// Model is the cluster network; the supervisor overrides its rank
	// placement (one rank per physical node plus spares and the head
	// node), so RanksPerNode/NodeMap must be unset.
	Model *simnet.Model
	// NewSolver builds (or rebuilds) one rank's solver at the start of
	// each attempt. The communicator spans exactly the solver ranks.
	NewSolver func(comm *mpi.Comm) (Solver, error)

	// Steps is the target step count; CheckpointEvery the checkpoint
	// interval in steps (0 disables checkpointing: recovery then always
	// restarts from step 0). CheckpointCostS charges each checkpoint as
	// blocking I/O on the virtual wall clock.
	Steps           int
	CheckpointEvery int
	CheckpointCostS float64

	// Faults is the campaign's fault plan, keyed by PHYSICAL NODE id in
	// [0, Procs+Spares) — a crash follows the broken hardware, not the
	// logical rank, so a rank moved onto a spare sheds the old node's
	// faults. Nil means fault-free. The plan applies to every attempt;
	// fault times are relative to each attempt's start.
	Faults simnet.Injector
	// Rel enables reliable MPI delivery for the solver's traffic.
	Rel *mpi.Reliability

	// MaxRestarts is the retry budget: the number of failed attempts
	// tolerated before giving up (default Spares+3).
	MaxRestarts int

	Heartbeat HeartbeatConfig
	Watchdog  WatchdogConfig

	// Store, when set, makes every staged checkpoint durable (framed,
	// compressed, CRC-protected — internal/ckpt) and the rollback rule
	// corruption-aware: after a failure the supervisor resumes from the
	// newest step whose records verify on every rank, falling back past
	// torn or bit-flipped records. A pre-populated store warm-starts
	// the whole campaign (cross-process resume). Kind tags the records.
	Store ckpt.Store
	Kind  string

	// Adapt, when set, turns on the adaptive-resilience layer
	// (internal/policy): the live Young's-formula cadence replaces
	// CheckpointEvery (which then seeds the initial interval), the MTBF
	// estimator feeds on the campaign's failure history, checkpoint
	// writes go through the runtime writer selector, and watchdog trips
	// climb the escalation ladder instead of plain rollback-and-retry.
	// In policy.Pinned mode the controllers are installed but held, and
	// the run stays bit-identical — in trajectory AND virtual wall
	// time — to a static run at the same cadence.
	Adapt *policy.Config
	// NewTunedSolver supersedes NewSolver when set: dtScale carries the
	// escalation ladder's current time-step reduction (1 = nominal).
	// Required for the ladder's retry-dt rung to have any effect.
	NewTunedSolver func(comm *mpi.Comm, dtScale float64) (Solver, error)
	// SimDiskMBs, when > 0 with Adapt set, prices each checkpoint
	// through a per-rank ckpt.SimWriter over the cluster's calibrated
	// disk/network model — in the write mode the runtime selector
	// chooses — instead of the flat CheckpointCostS sleep.
	SimDiskMBs float64
}

// Cause classifies a failure.
type Cause int

const (
	// CauseCrash: the rank's node died (simnet crash fault).
	CauseCrash Cause = iota
	// CauseStall: the rank's process froze past the detector timeout.
	CauseStall
	// CauseWatchdog: the rank's fields failed the numerical-health
	// check; the hardware is fine and no spare is consumed.
	CauseWatchdog
)

func (c Cause) String() string {
	switch c {
	case CauseCrash:
		return "crash"
	case CauseStall:
		return "stall"
	case CauseWatchdog:
		return "watchdog"
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

// Failure records one detected-and-handled rank failure.
type Failure struct {
	Attempt int
	Rank    int
	Cause   Cause
	// DetectedAt is the monitor's verdict time (virtual seconds into
	// the attempt).
	DetectedAt float64
	// RestartStep is the committed checkpoint step the next attempt
	// resumed from (-1 = from scratch).
	RestartStep int
	// NewNode is the spare the rank moved to (-1 for watchdog trips,
	// which do not consume hardware).
	NewNode int
}

// Result reports a completed supervised run.
type Result struct {
	// Attempts is the number of runs launched (1 = no failures).
	Attempts int
	// Failures lists every handled failure, in detection order.
	Failures []Failure
	// Trips lists every watchdog trip.
	Trips []Trip
	// StepsComputed counts rank-0 solver steps across all attempts.
	StepsComputed int
	// VirtualWall is the campaign's total virtual wall time: for each
	// attempt, the time to completion or to the monitor's failure
	// verdict (at which point a real supervisor kills the job).
	VirtualWall float64
	// FinalStates holds each rank's final serialized solver state; gob
	// encoding is deterministic, so bit-identical trajectories give
	// byte-identical states.
	FinalStates [][]byte
	// Replacements is the spare-pool history of the campaign.
	Replacements []simnet.Replacement

	// Escalations lists the adaptive ladder's decisions, in trip order
	// (adaptive runs only).
	Escalations []Escalation
	// MTBFEstimateS, FinalInterval, and WriteMode snapshot the adaptive
	// layer's end state: the cluster MTBF estimate (virtual seconds),
	// the cadence in force, and the writer mode selected (adaptive runs
	// only; zero values otherwise).
	MTBFEstimateS float64
	FinalInterval int
	WriteMode     string
}

// Escalation records one adaptive-ladder decision.
type Escalation struct {
	Attempt int
	Rank    int
	Step    int
	Action  string
	DtScale float64
}

// RetryError is the structured give-up error: the retry budget or the
// spare pool ran out before the run completed.
type RetryError struct {
	Reason   string
	Attempts int
	Failures []Failure
}

func (e *RetryError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "supervisor: %s after %d attempt(s)", e.Reason, e.Attempts)
	for _, f := range e.Failures {
		fmt.Fprintf(&b, "; attempt %d: rank %d %s at t=%.4gs", f.Attempt, f.Rank, f.Cause, f.DetectedAt)
	}
	return b.String()
}

// Run executes a supervised run to completion, recovering from crashes,
// stalls, and watchdog trips automatically. It returns a *RetryError
// when the retry budget or the spare pool is exhausted, and a plain
// error for failures outside the fault model (a solver bug, an invalid
// configuration).
func Run(cfg Config) (*Result, error) {
	if cfg.Procs < 1 || cfg.Steps < 1 {
		return nil, fmt.Errorf("supervisor: need at least one rank and one step")
	}
	if cfg.NewSolver == nil && cfg.NewTunedSolver == nil {
		return nil, fmt.Errorf("supervisor: NewSolver (or NewTunedSolver) is required")
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("supervisor: Model is required")
	}
	if cfg.Model.RanksPerNode > 1 || cfg.Model.NodeMap != nil {
		return nil, fmt.Errorf("supervisor: Model must leave rank placement to the supervisor (RanksPerNode <= 1, NodeMap nil)")
	}
	if cfg.Spares < 0 {
		return nil, fmt.Errorf("supervisor: negative spare count %d", cfg.Spares)
	}
	maxAttempts := cfg.MaxRestarts + 1
	if cfg.MaxRestarts <= 0 {
		maxAttempts = cfg.Spares + 4
	}
	pool, err := simnet.NewSparePool(cfg.Procs, cfg.Spares)
	if err != nil {
		return nil, err
	}

	// Adaptive layer: campaign-level controller state (nil = static).
	var rt *adaptRuntime
	if cfg.Adapt != nil {
		if rt, err = newAdaptRuntime(*cfg.Adapt, cfg.CheckpointEvery); err != nil {
			return nil, err
		}
	}

	res := &Result{}
	committedStep := -1
	var committed [][]byte
	// commitLog is the in-memory commit history (newest last) backing
	// the ladder's deeper-rollback rung when no durable store records
	// it for us.
	type memCommit struct {
		step   int
		states [][]byte
	}
	var commitLog []memCommit
	// A durable store may already hold a usable checkpoint from an
	// earlier (killed) process — resume the campaign from it.
	if cfg.Store != nil {
		s, states, serr := ckpt.Latest(cfg.Store, cfg.Procs)
		if serr != nil {
			return nil, fmt.Errorf("supervisor: reading checkpoint store: %w", serr)
		}
		if s >= 0 {
			committedStep, committed = s, states
		}
	}

	for attemptNo := 0; attemptNo < maxAttempts; attemptNo++ {
		a := newAttempt(&cfg, pool, attemptNo, committedStep, committed)
		if rt != nil {
			a.ad = rt.attemptState()
		}
		wall, _, runErr := simnet.RunWithFaults(cfg.Procs+1, a.model, a.inj, a.body)
		res.Attempts++
		res.StepsComputed += a.stepsRun[0]
		res.VirtualWall += a.attemptWall(wall)
		if rt != nil {
			rt.absorb(a.ad)
		}

		var ce *simnet.CrashError
		isCrash := errors.As(runErr, &ce)
		if runErr != nil && !isCrash {
			return nil, fmt.Errorf("supervisor: attempt %d failed outside the fault model: %w", attemptNo, runErr)
		}
		if runErr == nil && a.completed() {
			res.FinalStates = a.final
			res.Replacements = pool.Replacements()
			if rt != nil {
				res.MTBFEstimateS = rt.est.MTBFS()
				res.FinalInterval = rt.interval
				res.WriteMode = rt.writeMode.String()
			}
			return res, nil
		}

		// Failed attempt. Identify the failed ranks: the detector's
		// suspicion is in-band (heartbeat silence); the diagnosis below
		// is the out-of-band node inspection a real supervisor performs
		// before allocating hardware (IPMI says the node died; the
		// process is alive but frozen; the fields went non-finite).
		detectedAt := math.NaN()
		if a.verdict != nil {
			detectedAt = a.verdict.at
		}
		cause := map[int]Cause{}
		if isCrash {
			for _, r := range ce.Ranks {
				cause[r] = CauseCrash
			}
		}
		for r := 0; r < cfg.Procs; r++ {
			if _, dead := cause[r]; !dead && a.stallFired(r, wall[r]) {
				cause[r] = CauseStall
			}
		}
		var trips []Trip
		for r := 0; r < cfg.Procs; r++ {
			if a.trips[r] != nil {
				trips = append(trips, *a.trips[r])
			}
		}
		if len(cause) == 0 && len(trips) == 0 {
			return nil, fmt.Errorf(
				"supervisor: attempt %d halted (verdict %v) but no crash, stall, or watchdog trip explains it — detector threshold too tight for this workload?",
				attemptNo, a.verdictRanks())
		}

		// Commit the newest checkpoint present on every rank; a trip
		// exits before staging, so corrupt state never gets here. Doing
		// this before recording failures lets each Failure carry the
		// step the next attempt actually resumes from. With a durable
		// store the commit re-reads through CRC verification, so a torn
		// or bit-flipped record demotes its step and the rollback lands
		// on the previous complete checkpoint.
		if cfg.Store != nil {
			s, states, serr := ckpt.Latest(cfg.Store, cfg.Procs)
			if serr != nil {
				return nil, fmt.Errorf("supervisor: reading checkpoint store after failure: %w", serr)
			}
			if s > committedStep {
				committedStep, committed = s, states
			}
		} else if s := a.commitNewest(); s > committedStep {
			committedStep = s
			committed = make([][]byte, cfg.Procs)
			for r := 0; r < cfg.Procs; r++ {
				committed[r] = a.staged[r][s]
			}
			commitLog = append(commitLog, memCommit{step: s, states: committed})
		}

		// Hardware failures consume spares; the rank keeps its id and
		// moves onto the replacement node for the next attempt.
		for r := 0; r < cfg.Procs; r++ {
			c, failed := cause[r]
			if !failed {
				continue
			}
			newNode, rerr := pool.Replace(r)
			if rerr != nil {
				res.Failures = append(res.Failures, Failure{
					Attempt: attemptNo, Rank: r, Cause: c,
					DetectedAt: detectedAt, RestartStep: committedStep, NewNode: -1,
				})
				return nil, &RetryError{Reason: "spare pool exhausted", Attempts: res.Attempts, Failures: res.Failures}
			}
			res.Failures = append(res.Failures, Failure{
				Attempt: attemptNo, Rank: r, Cause: c,
				DetectedAt: detectedAt, RestartStep: committedStep, NewNode: newNode,
			})
			// Hardware failures feed the MTBF estimator at the
			// campaign's cumulative virtual time of detection.
			if rt != nil {
				rt.est.ObserveFailure(r, res.VirtualWall)
			}
		}
		// Watchdog trips roll back without consuming hardware — unless
		// the adaptive ladder escalates to conviction below.
		if len(trips) > 0 {
			res.Trips = append(res.Trips, trips...)
			for _, tr := range trips {
				res.Failures = append(res.Failures, Failure{
					Attempt: attemptNo, Rank: tr.Rank, Cause: CauseWatchdog,
					DetectedAt: detectedAt, RestartStep: committedStep, NewNode: -1,
				})
			}
			if cfg.Watchdog.OnTrip != nil {
				cfg.Watchdog.OnTrip(trips[0])
			}
			if rt == nil {
				continue
			}
			// Escalation ladder: retry with reduced dt, then roll back
			// one commit deeper, then convict the tripping rank's node.
			tr := trips[0]
			dec := rt.ladder.Decide(attemptNo, tr.Rank, tr.Step)
			res.Escalations = append(res.Escalations, Escalation{
				Attempt: attemptNo, Rank: tr.Rank, Step: tr.Step,
				Action: dec.Action.String(), DtScale: dec.DtScale,
			})
			switch dec.Action {
			case policy.ActionRetryDt:
				rt.dtScale = dec.DtScale
			case policy.ActionRollback:
				// The restart state itself is suspect: demote the newest
				// commit and recompute through the bad region. The
				// demoted records are deleted (durable store) or dropped
				// (memory log) so a later commit pass cannot resurrect
				// them.
				if committedStep < 0 {
					break
				}
				drop := committedStep
				if cfg.Store != nil {
					s2, st2, serr := ckpt.LatestBelow(cfg.Store, cfg.Procs, drop)
					if serr != nil {
						return nil, fmt.Errorf("supervisor: reading checkpoint store for deep rollback: %w", serr)
					}
					committedStep, committed = s2, st2
					if derr := cfg.Store.Delete(drop); derr != nil {
						return nil, fmt.Errorf("supervisor: demoting checkpoint step %d: %w", drop, derr)
					}
				} else if n := len(commitLog); n > 0 {
					commitLog = commitLog[:n-1]
					if n >= 2 {
						committedStep, committed = commitLog[n-2].step, commitLog[n-2].states
					} else {
						committedStep, committed = -1, nil
					}
				}
			case policy.ActionConvict:
				newNode, rerr := pool.Replace(tr.Rank)
				if rerr != nil {
					return nil, &RetryError{Reason: "spare pool exhausted", Attempts: res.Attempts, Failures: res.Failures}
				}
				for i := len(res.Failures) - 1; i >= 0; i-- {
					if res.Failures[i].Cause == CauseWatchdog && res.Failures[i].Rank == tr.Rank {
						res.Failures[i].NewNode = newNode
						break
					}
				}
			}
		}
	}
	return nil, &RetryError{Reason: "retry budget exhausted", Attempts: res.Attempts, Failures: res.Failures}
}
