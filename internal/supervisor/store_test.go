package supervisor_test

import (
	"testing"

	"nektar/internal/ckpt"
	"nektar/internal/fault"
	"nektar/internal/supervisor"
)

// A supervised campaign writing through a durable store must roll back
// past a damaged checkpoint: the crash and the torn record share one
// fault plan (the plan is both the simnet injector and the store's
// corrupter), and the rollback lands on the newest checkpoint that
// verifies on every rank — not the newest one staged.
func TestSupervisedCrashTornCheckpointFallsBack(t *testing.T) {
	cfg := baseConfig(2, nsfFactory(t))
	ref := runReference(t, cfg)

	// Checkpoints land at steps 2, 4, 6. The node dies mid-step-6, so
	// steps 2 and 4 are staged — but rank 1's step-4 record was torn
	// mid-write, leaving step 2 as the newest verifiable rollback point.
	store := ckpt.NewMemStore()
	plan := fault.NewPlan(1).
		Crash(1, 5.5/8*ref.VirtualWall).
		TornWrite(4, 1, 0.5)
	store.SetCorrupter(plan)
	cfg.Store, cfg.Kind = store, "nsf"
	cfg.Faults = plan
	tuneDetector(&cfg, ref)
	got, err := supervisor.Run(cfg)
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if got.Attempts != 2 || len(got.Failures) != 1 {
		t.Fatalf("attempts=%d failures=%+v, want one crash and one retry", got.Attempts, got.Failures)
	}
	f := got.Failures[0]
	if f.Cause != supervisor.CauseCrash || f.Rank != 1 {
		t.Fatalf("failure = %+v, want rank 1 crash", f)
	}
	if f.RestartStep != 2 {
		t.Fatalf("restarted from step %d, want 2 (fallback past the torn step-4 record)", f.RestartStep)
	}
	assertBitIdentical(t, ref, got)
}

// A flipped bit must demote a checkpoint exactly like a torn write.
func TestSupervisedCrashBitFlipFallsBack(t *testing.T) {
	cfg := baseConfig(2, nsfFactory(t))
	ref := runReference(t, cfg)

	store := ckpt.NewMemStore()
	plan := fault.NewPlan(1).
		Crash(1, 5.5/8*ref.VirtualWall).
		FlipBit(4, 0, 777)
	store.SetCorrupter(plan)
	cfg.Store, cfg.Kind = store, "nsf"
	cfg.Faults = plan
	tuneDetector(&cfg, ref)
	got, err := supervisor.Run(cfg)
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if got.Attempts != 2 || got.Failures[0].RestartStep != 2 {
		t.Fatalf("attempts=%d failures=%+v, want a retry from step 2", got.Attempts, got.Failures)
	}
	assertBitIdentical(t, ref, got)
}
