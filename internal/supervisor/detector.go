package supervisor

import "math"

// PhiDetector is a phi-accrual failure detector (Hayashibara et al.,
// SRDS 2004) on the simulator's virtual clock, with an exponential
// inter-arrival model: if heartbeats from a rank arrive with mean
// interval m, the suspicion level at time t since the last heartbeat
// is phi(t) = (t - last) / (m ln 10), i.e. phi = -log10 of the
// probability that a heartbeat is merely late rather than lost. The
// detector trips when phi crosses a threshold, so its timeout adapts
// to the observed heartbeat cadence — checkpoint I/O pauses widen the
// window, a fast steady cadence tightens it. Everything is a pure
// function of the observed virtual arrival times, so detection latency
// is deterministic and testable.
type PhiDetector struct {
	threshold float64
	window    []float64 // sliding window of inter-arrival intervals
	wmax      int
	sum       float64
	last      float64 // virtual time of the newest heartbeat
}

// minMeanInterval floors the estimated mean so a burst of
// zero-interval arrivals cannot collapse the timeout to nothing.
const minMeanInterval = 1e-12

// NewPhiDetector builds a detector that suspects a rank when phi
// exceeds threshold (default 8 ≈ a one-in-10^8 false positive under
// the model). seedInterval primes the window before the first real
// heartbeat — pick the expected heartbeat period; a generous seed only
// delays the first detection, it never causes a false positive. window
// bounds the sliding interval history (default 32).
func NewPhiDetector(threshold, seedInterval float64, window int) *PhiDetector {
	if threshold <= 0 {
		threshold = 8
	}
	if seedInterval <= 0 {
		seedInterval = 1
	}
	if window < 1 {
		window = 32
	}
	return &PhiDetector{
		threshold: threshold,
		window:    []float64{seedInterval},
		wmax:      window,
		sum:       seedInterval,
	}
}

// Observe records a heartbeat arriving at virtual time t. Time must
// not run backwards. A duplicate arrival at the same instant (or an
// out-of-order one, clamped to zero) refreshes the liveness mark but
// contributes no interval: zero-width intervals carry no information
// about the heartbeat cadence, and admitting them would collapse the
// mean — a burst of duplicates used to drag Deadline() down to
// essentially "now", turning the next quiet moment into a false
// suspicion.
func (d *PhiDetector) Observe(t float64) {
	dt := t - d.last
	if dt <= 0 {
		d.last = math.Max(d.last, t)
		return
	}
	d.window = append(d.window, dt)
	d.sum += dt
	if len(d.window) > d.wmax {
		d.sum -= d.window[0]
		d.window = d.window[1:]
	}
	d.last = t
}

// mean returns the current mean inter-arrival estimate.
func (d *PhiDetector) mean() float64 {
	m := d.sum / float64(len(d.window))
	if m < minMeanInterval {
		m = minMeanInterval
	}
	return m
}

// Phi returns the suspicion level at virtual time t.
func (d *PhiDetector) Phi(t float64) float64 {
	dt := t - d.last
	if dt <= 0 {
		return 0
	}
	return dt / (d.mean() * math.Ln10)
}

// Deadline returns the earliest virtual time at which Phi reaches the
// threshold, i.e. when this rank becomes a suspect if no further
// heartbeat arrives.
func (d *PhiDetector) Deadline() float64 {
	return d.last + d.threshold*math.Ln10*d.mean()
}

// Last returns the virtual arrival time of the newest heartbeat.
func (d *PhiDetector) Last() float64 { return d.last }
