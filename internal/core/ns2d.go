package core

import (
	"fmt"
	"io"
	"math"

	"nektar/internal/blas"
	"nektar/internal/mesh"
	"nektar/internal/solver"
	"nektar/internal/timing"
)

// VelBC is a velocity Dirichlet boundary condition.
type VelBC func(x, y float64) (u, v float64)

// ConstantVel returns a constant-velocity boundary condition.
func ConstantVel(u, v float64) VelBC {
	return func(x, y float64) (float64, float64) { return u, v }
}

// NS2DConfig configures the serial 2D Navier-Stokes solver.
type NS2DConfig struct {
	Nu    float64 // kinematic viscosity
	Dt    float64
	Order int // time-integration order (1 or 2; ramps up from 1)

	// VelDirichlet maps boundary tags to essential velocity values;
	// untagged boundaries get natural (zero-flux) conditions, the
	// paper's outflow/side treatment.
	VelDirichlet map[string]VelBC
	// PresDirichlet lists tags where p = 0 is imposed (outflow).
	PresDirichlet map[string]bool
}

// NS2D is the serial unstructured spectral/hp element incompressible
// Navier-Stokes solver (the paper's serial bluff-body benchmark code).
type NS2D struct {
	M   *mesh.Mesh
	Cfg NS2DConfig

	AV *mesh.Assembly // velocity numbering (Dirichlet on walls/inflow)
	AP *mesh.Assembly // pressure numbering (Dirichlet on outflow)

	helm [2]*solver.Condensed // viscous operators for order-1 and order-2 gamma0
	pois *solver.Condensed

	U    [2][]float64 // global modal velocity
	dirU [2][]float64 // velocity Dirichlet values

	// Histories at quadrature points, newest first: velocities and
	// nonlinear terms for the multistep scheme.
	histU [][2][][]float64
	histN [][2][][]float64

	// Pressure-Neumann boundary edges (everything not
	// pressure-Dirichlet) for the flux term of the Poisson RHS.
	fluxEdges []*mesh.EdgeQuad
	wallEdges []*mesh.EdgeQuad // tag "wall", for force output

	P []float64 // latest pressure (global modal)

	step   int
	stages *timing.Stages

	scr ns2dScratch // Step workspace, reused across steps
}

// ns2dScratch is Step's reusable workspace. Every buffer here is either
// fully overwritten before it is read or explicitly zeroed where a
// stage accumulates into it, so reuse is bit-identical to the fresh
// allocations it replaces. The velocity and nonlinear quadrature fields
// (uq, nq2) are deliberately NOT here: pushHistory retains their inner
// slices across steps for the multistep scheme.
type ns2dScratch struct {
	coefs [][2][]float64 // per-element modal velocity
	uhat  [][2][]float64 // per-element u_hat at quadrature
	grad  [][]float64    // PhysGrad output pair (max NQuad)
	gradP [][]float64
	tmp   []float64 // max NQuad
	dpar  []float64
	f     []float64
	out   []float64 // max NModes
	pcoef []float64
	g     []float64 // max edge quadrature points
	tr    []float64
	prhs  []float64    // AP.NGlobal
	vrhs  [2][]float64 // AV.NGlobal
}

// ensureScratch builds the workspace on first use (it is not part of
// the checkpointed state, so a restored solver rebuilds it lazily).
func (ns *NS2D) ensureScratch() *ns2dScratch {
	s := &ns.scr
	if s.coefs != nil {
		return s
	}
	nel := len(ns.M.Elems)
	s.coefs = make([][2][]float64, nel)
	s.uhat = make([][2][]float64, nel)
	maxNQ, maxNM := 0, 0
	for ei, el := range ns.M.Elems {
		for c := 0; c < 2; c++ {
			s.coefs[ei][c] = make([]float64, el.Ref.NModes)
			s.uhat[ei][c] = make([]float64, el.Ref.NQuad)
		}
		maxNQ = max(maxNQ, el.Ref.NQuad)
		maxNM = max(maxNM, el.Ref.NModes)
	}
	maxQ1 := 0
	for _, eq := range ns.fluxEdges {
		maxQ1 = max(maxQ1, len(eq.Points1D))
	}
	s.grad = [][]float64{make([]float64, maxNQ), make([]float64, maxNQ)}
	s.gradP = [][]float64{make([]float64, maxNQ), make([]float64, maxNQ)}
	s.tmp = make([]float64, maxNQ)
	s.dpar = make([]float64, maxNQ)
	s.f = make([]float64, maxNQ)
	s.out = make([]float64, maxNM)
	s.pcoef = make([]float64, maxNM)
	s.g = make([]float64, maxQ1)
	s.tr = make([]float64, maxQ1)
	s.prhs = make([]float64, ns.AP.NGlobal)
	s.vrhs = [2][]float64{make([]float64, ns.AV.NGlobal), make([]float64, ns.AV.NGlobal)}
	return s
}

// zerof clears a scratch buffer with a plain loop. Not a BLAS call on
// purpose: the recorded operation counts price the simulated machines,
// and buffer reuse must not change what the fresh make() used to cost.
func zerof(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Stages exposes the per-stage instrumentation (engine.Solver).
func (ns *NS2D) Stages() *timing.Stages { return ns.stages }

// NewNS2D builds the solver: assemblies, boundary tabulations and the
// factored global operators.
func NewNS2D(m *mesh.Mesh, cfg NS2DConfig) (*NS2D, error) {
	if cfg.Order < 1 || cfg.Order > 2 {
		return nil, fmt.Errorf("core: time order must be 1 or 2, got %d", cfg.Order)
	}
	if cfg.Nu <= 0 || cfg.Dt <= 0 {
		return nil, fmt.Errorf("core: need positive Nu and Dt")
	}
	ns := &NS2D{M: m, Cfg: cfg, stages: timing.NewStages(StageNames...)}
	isVelD := func(tag string) bool { _, ok := cfg.VelDirichlet[tag]; return ok }
	isPresD := func(tag string) bool { return cfg.PresDirichlet[tag] }
	ns.AV = mesh.NewAssembly(m, isVelD)
	ns.AP = mesh.NewAssembly(m, isPresD)

	var err error
	for ord := 1; ord <= cfg.Order; ord++ {
		lambda := ssGamma[ord-1] / (cfg.Nu * cfg.Dt)
		ns.helm[ord-1], err = solver.NewCondensed(ns.AV, lambda)
		if err != nil {
			return nil, fmt.Errorf("core: viscous operator: %w", err)
		}
	}
	ns.pois, err = solver.NewCondensed(ns.AP, 0)
	if err != nil {
		return nil, fmt.Errorf("core: pressure operator: %w", err)
	}

	for _, be := range m.BndEdges {
		eq := mesh.NewEdgeQuad(m, m.Elems[be.Elem], be.LocalEdge, 0)
		if !isPresD(be.Tag) {
			ns.fluxEdges = append(ns.fluxEdges, eq)
		}
		if be.Tag == "wall" {
			ns.wallEdges = append(ns.wallEdges, eq)
		}
	}

	// Dirichlet values per velocity component.
	for c := 0; c < 2; c++ {
		cc := c
		ns.dirU[c] = make([]float64, ns.AV.NGlobal)
		for _, be := range m.BndEdges {
			bc, ok := cfg.VelDirichlet[be.Tag]
			if !ok {
				continue
			}
			ns.AV.ProjectEdgeTrace(be, func(x, y float64) float64 {
				u, v := bc(x, y)
				if cc == 0 {
					return u
				}
				return v
			}, ns.dirU[c])
		}
		ns.U[c] = make([]float64, ns.AV.NGlobal)
	}
	ns.P = make([]float64, ns.AP.NGlobal)
	return ns, nil
}

// SetInitial projects an initial velocity field. Vertex dofs take
// nodal values and higher modes are set by per-element Galerkin
// projection averaged across elements (a practical C0 interpolant).
func (ns *NS2D) SetInitial(f func(x, y float64) (u, v float64)) {
	for c := 0; c < 2; c++ {
		acc := make([]float64, ns.AV.NGlobal)
		wgt := make([]float64, ns.AV.NGlobal)
		cc := c
		for ei, el := range ns.M.Elems {
			nq := el.Ref.NQuad
			phys := make([]float64, nq)
			for q := 0; q < nq; q++ {
				u, v := f(el.X[0][q], el.X[1][q])
				if cc == 0 {
					phys[q] = u
				} else {
					phys[q] = v
				}
			}
			coef := make([]float64, el.Ref.NModes)
			el.FwdTrans(phys, coef)
			l2g, sign := ns.AV.L2G[ei], ns.AV.Sign[ei]
			for mi, g := range l2g {
				acc[g] += sign[mi] * coef[mi]
				wgt[g]++
			}
		}
		for i := range acc {
			if wgt[i] > 0 {
				acc[i] /= wgt[i]
			}
		}
		// Dirichlet entries come from the boundary projection, not the
		// interior average.
		copy(acc[ns.AV.NSolve:], ns.dirU[c][ns.AV.NSolve:])
		ns.U[c] = acc
	}
	ns.histU = nil
	ns.histN = nil
	ns.step = 0
}

// SetUniformInitial initializes with a constant velocity (impulsive
// start), exactly representable by the vertex modes.
func (ns *NS2D) SetUniformInitial(u, v float64) {
	vals := [2]float64{u, v}
	for c := 0; c < 2; c++ {
		vec := make([]float64, ns.AV.NGlobal)
		for _, d := range ns.AV.VertDof {
			vec[d] = vals[c]
		}
		copy(vec[ns.AV.NSolve:], ns.dirU[c][ns.AV.NSolve:])
		ns.U[c] = vec
	}
	ns.histU = nil
	ns.histN = nil
	ns.step = 0
}

// order returns the effective scheme order for the current step
// (ramping up from 1 so the multistep history fills correctly).
func (ns *NS2D) order() int {
	o := ns.step + 1
	if o > ns.Cfg.Order {
		o = ns.Cfg.Order
	}
	return o
}

// Step advances the solution by one time step through the seven
// instrumented stages.
func (ns *NS2D) Step() {
	m := ns.M
	nel := len(m.Elems)
	ord := ns.order()
	gamma := ssGamma[ord-1]
	alpha := ssAlpha[ord-1]
	beta := ssBeta[ord-1]
	dt, nu := ns.Cfg.Dt, ns.Cfg.Nu
	st := ns.stages
	scr := ns.ensureScratch()

	// --- Stage 1: modal -> quadrature transforms.
	st.Begin(0)
	coefs := scr.coefs
	uq := make([][2][]float64, nel)
	for ei, el := range m.Elems {
		for c := 0; c < 2; c++ {
			coef := coefs[ei][c]
			ns.AV.Scatter(ei, ns.U[c], coef)
			// phys stays freshly allocated: pushHistory retains it.
			phys := make([]float64, el.Ref.NQuad)
			el.BwdTrans(coef, phys)
			uq[ei][c] = phys
		}
	}

	// --- Stage 2: nonlinear terms N = -(V.grad)V in quadrature space.
	st.Begin(1)
	nq2 := make([][2][]float64, nel)
	grad := scr.grad
	for ei, el := range m.Elems {
		nq := el.Ref.NQuad
		for c := 0; c < 2; c++ {
			el.PhysGrad(coefs[ei][c], grad)
			// nl stays freshly allocated: pushHistory retains it.
			nl := make([]float64, nq)
			// nl = -(u * du_c/dx + v * du_c/dy)
			blas.Dvmul(nq, uq[ei][0], 1, grad[0], 1, nl, 1)
			blas.Dvmul(nq, uq[ei][1], 1, grad[1], 1, scr.tmp, 1)
			blas.Daxpy(nq, 1, scr.tmp, 1, nl, 1)
			blas.Dscal(nq, -1, nl, 1)
			nq2[ei][c] = nl
		}
	}

	// --- Stage 3: weight-average nonlinear history and build u_hat.
	st.Begin(2)
	ns.histN = pushHistory(ns.histN, nq2, ord)
	ns.histU = pushHistory(ns.histU, uq, ord)
	uhat := scr.uhat
	for ei, el := range m.Elems {
		nq := el.Ref.NQuad
		for c := 0; c < 2; c++ {
			h := uhat[ei][c]
			zerof(h)
			for j := 0; j < ord; j++ {
				blas.Daxpy(nq, alpha[j], ns.histU[j][c][ei], 1, h, 1)
				blas.Daxpy(nq, dt*beta[j], ns.histN[j][c][ei], 1, h, 1)
			}
		}
		_ = el
	}

	// --- Stage 4: pressure Poisson RHS: (1/dt) [ int u_hat . grad(phi)
	// - boundary flux ].
	st.Begin(3)
	prhs := scr.prhs
	zerof(prhs)
	for ei, el := range m.Elems {
		n, nq := el.Ref.NModes, el.Ref.NQuad
		out := scr.out[:n]
		zerof(out)
		for c := 0; c < 2; c++ {
			// tmp = u_hat_c * WJ
			blas.Dvmul(nq, uhat[ei][c], 1, el.WJ, 1, scr.tmp, 1)
			// out[m] += sum_q dphi_m/dx_c(q) tmp[q], via parametric
			// derivatives and the metric (sum-factorized).
			for d := 0; d < 2; d++ {
				blas.Dvmul(nq, scr.tmp, 1, el.DxiDx[d][c], 1, scr.dpar, 1)
				el.Ref.IProductDerivAdd(d, 1.0/dt, scr.dpar, out)
			}
		}
		ns.AP.Gather(ei, out, prhs)
	}
	// Boundary flux on pressure-Neumann edges: -(1/dt) u_hat.n phi,
	// with the trace extracted directly from the quadrature values.
	for _, eq := range ns.fluxEdges {
		el := eq.Elem
		q1 := len(eq.Points1D)
		g := scr.g[:q1]
		zerof(g)
		tr := scr.tr[:q1]
		for c := 0; c < 2; c++ {
			eq.EvalPhys(uhat[el.ID][c], tr)
			nrm := eq.Nx
			if c == 1 {
				nrm = eq.Ny
			}
			blas.Daxpy(q1, nrm, tr, 1, g, 1)
		}
		blas.Dscal(q1, -1/dt, g, 1)
		out := scr.out[:el.Ref.NModes]
		zerof(out)
		eq.AccumulateFlux(g, out)
		ns.AP.Gather(el.ID, out, prhs)
	}

	// --- Stage 5: pressure solve.
	st.Begin(4)
	ns.P = ns.pois.Solve(prhs, nil)

	// --- Stage 6: viscous RHS: f = (u_hat - dt grad p) / (nu dt).
	st.Begin(5)
	vrhs := scr.vrhs
	zerof(vrhs[0])
	zerof(vrhs[1])
	for ei, el := range m.Elems {
		nq := el.Ref.NQuad
		pcoef := scr.pcoef[:el.Ref.NModes]
		ns.AP.Scatter(ei, ns.P, pcoef)
		gradP := scr.gradP
		el.PhysGrad(pcoef, gradP)
		// out is fully overwritten by IProduct, f by Dcopy: no zeroing.
		out := scr.out[:el.Ref.NModes]
		f := scr.f[:nq]
		for c := 0; c < 2; c++ {
			blas.Dcopy(nq, uhat[ei][c], 1, f, 1)
			blas.Daxpy(nq, -dt, gradP[c], 1, f, 1)
			blas.Dscal(nq, 1/(nu*dt), f, 1)
			el.IProduct(f, out)
			ns.AV.Gather(ei, out, vrhs[c])
		}
	}

	// --- Stage 7: viscous Helmholtz solves.
	st.Begin(6)
	for c := 0; c < 2; c++ {
		ns.U[c] = ns.helm[ord-1].Solve(vrhs[c], ns.dirU[c])
	}
	st.End()

	ns.step++
	_ = gamma
}

// pushHistory prepends the newest level and truncates to depth.
func pushHistory(hist [][2][][]float64, newest [][2][]float64, depth int) [][2][][]float64 {
	lvl := [2][][]float64{}
	for c := 0; c < 2; c++ {
		lvl[c] = make([][]float64, len(newest))
		for ei := range newest {
			lvl[c][ei] = newest[ei][c]
		}
	}
	hist = append([][2][][]float64{lvl}, hist...)
	if len(hist) > depth {
		hist = hist[:depth]
	}
	return hist
}

// Velocity evaluates the current velocity at the quadrature points of
// element ei.
func (ns *NS2D) Velocity(ei int) (u, v []float64) {
	el := ns.M.Elems[ei]
	coef := make([]float64, el.Ref.NModes)
	u = make([]float64, el.Ref.NQuad)
	v = make([]float64, el.Ref.NQuad)
	ns.AV.Scatter(ei, ns.U[0], coef)
	el.BwdTrans(coef, u)
	ns.AV.Scatter(ei, ns.U[1], coef)
	el.BwdTrans(coef, v)
	return u, v
}

// KineticEnergy returns 0.5 * integral |u|^2 over the domain.
func (ns *NS2D) KineticEnergy() float64 {
	var ke float64
	for ei, el := range ns.M.Elems {
		u, v := ns.Velocity(ei)
		for q := 0; q < el.Ref.NQuad; q++ {
			ke += 0.5 * (u[q]*u[q] + v[q]*v[q]) * el.WJ[q]
		}
	}
	return ke
}

// MaxDivergence returns the maximum pointwise |div u| over all
// quadrature points — the splitting scheme keeps it small but nonzero.
func (ns *NS2D) MaxDivergence() float64 {
	var worst float64
	for ei, el := range ns.M.Elems {
		coef := make([]float64, el.Ref.NModes)
		grad := [][]float64{make([]float64, el.Ref.NQuad), make([]float64, el.Ref.NQuad)}
		div := make([]float64, el.Ref.NQuad)
		ns.AV.Scatter(ei, ns.U[0], coef)
		el.PhysGrad(coef, grad)
		copy(div, grad[0])
		ns.AV.Scatter(ei, ns.U[1], coef)
		el.PhysGrad(coef, grad)
		for q := range div {
			div[q] += grad[1][q]
			if a := math.Abs(div[q]); a > worst {
				worst = a
			}
		}
	}
	return worst
}

// Forces integrates the fluid stress over the "wall" boundary,
// returning the drag (x) and lift (y) force components:
// F = integral( -p n + nu (grad u + grad u^T) . n ) ds.
func (ns *NS2D) Forces() (fx, fy float64) {
	nu := ns.Cfg.Nu
	for _, eq := range ns.wallEdges {
		el := eq.Elem
		q1 := len(eq.Points1D)
		// Pressure trace.
		pcoef := make([]float64, el.Ref.NModes)
		ns.AP.Scatter(el.ID, ns.P, pcoef)
		ptr := make([]float64, q1)
		eq.Eval(pcoef, ptr)
		// Velocity gradient traces: project du/dx_c to modal, take
		// edge trace.
		var gtr [2][2][]float64
		coef := make([]float64, el.Ref.NModes)
		grad := [][]float64{make([]float64, el.Ref.NQuad), make([]float64, el.Ref.NQuad)}
		gcoef := make([]float64, el.Ref.NModes)
		for c := 0; c < 2; c++ {
			ns.AV.Scatter(el.ID, ns.U[c], coef)
			el.PhysGrad(coef, grad)
			for d := 0; d < 2; d++ {
				el.FwdTrans(grad[d], gcoef)
				tr := make([]float64, q1)
				eq.Eval(gcoef, tr)
				gtr[c][d] = tr
			}
		}
		gx := make([]float64, q1)
		gy := make([]float64, q1)
		for qi := 0; qi < q1; qi++ {
			// The Cauchy traction on the body uses the body-outward
			// normal, the negation of the fluid-domain outward normal
			// tabulated on the edge.
			nx, ny := -eq.Nx, -eq.Ny
			// sigma . n with sigma = -p I + nu (grad u + grad u^T).
			gx[qi] = -ptr[qi]*nx + nu*(2*gtr[0][0][qi]*nx+(gtr[0][1][qi]+gtr[1][0][qi])*ny)
			gy[qi] = -ptr[qi]*ny + nu*((gtr[1][0][qi]+gtr[0][1][qi])*nx+2*gtr[1][1][qi]*ny)
		}
		fx += eq.Integrate(gx)
		fy += eq.Integrate(gy)
	}
	return fx, fy
}

// L2VelocityError computes the L2 norm of (u - exact) over the domain.
func (ns *NS2D) L2VelocityError(exact func(x, y float64) (u, v float64)) float64 {
	var sum float64
	for ei, el := range ns.M.Elems {
		u, v := ns.Velocity(ei)
		for q := 0; q < el.Ref.NQuad; q++ {
			ue, ve := exact(el.X[0][q], el.X[1][q])
			du, dv := u[q]-ue, v[q]-ve
			sum += (du*du + dv*dv) * el.WJ[q]
		}
	}
	return math.Sqrt(sum)
}

// WriteField writes the velocity and pressure fields at the
// quadrature points as a whitespace-separated table (x y u v p),
// suitable for scatter plotting.
func (ns *NS2D) WriteField(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# x y u v p"); err != nil {
		return err
	}
	for ei, el := range ns.M.Elems {
		u, v := ns.Velocity(ei)
		pcoef := make([]float64, el.Ref.NModes)
		ns.AP.Scatter(ei, ns.P, pcoef)
		pq := make([]float64, el.Ref.NQuad)
		el.BwdTrans(pcoef, pq)
		for q := 0; q < el.Ref.NQuad; q++ {
			if _, err := fmt.Fprintf(w, "%g %g %g %g %g\n",
				el.X[0][q], el.X[1][q], u[q], v[q], pq[q]); err != nil {
				return err
			}
		}
	}
	return nil
}

// StepCount returns the number of completed steps.
func (ns *NS2D) StepCount() int { return ns.step }
