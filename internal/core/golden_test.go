package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"testing"

	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

// Golden determinism hashes: SHA-256 over the raw float bits of each
// solver's complete time-stepping state after a fixed short run,
// captured from the pre-engine-refactor code. The engine refactor must
// not change a single bit of any trajectory. The hash reads the solver
// fields directly rather than the gob checkpoint stream, because gob
// assigns wire type IDs from a process-global counter — the same state
// encodes to different bytes depending on what was gob-encoded earlier
// in the process, while the state itself is identical.
const (
	goldenNS2D = "62075ca6409de6d14a2873473020a4ac212e6c9fce740480c71ca4d255c6d212"
	goldenNSF0 = "19bcd5cea2b6eea26da542bfe0427f0d8fd7afd03c62d90624bb45d428c30e10"
	goldenNSF1 = "0482b5b2261cca707f2894ccc391710cbbb3011429f6cbc66a945932a6d93d39"
	goldenALE0 = "2d0f322f9420125ba3e583b40d3a480b117a816ed4a1c9a79827074357433e13"
	goldenALE1 = "ebaccd8dfbaeb210cd56382583d22f70b3683e969963319c019d788c8ae58601"
)

func hashInt(h hash.Hash, v int) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	h.Write(b[:])
}

func hashFloats(h hash.Hash, xs ...[]float64) {
	var b [8]byte
	for _, s := range xs {
		hashInt(h, len(s))
		for _, v := range s {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			h.Write(b[:])
		}
	}
}

func ns2dStateHash(ns *NS2D) string {
	h := sha256.New()
	hashInt(h, ns.step)
	hashFloats(h, ns.U[0], ns.U[1], ns.P)
	for _, lvl := range ns.histU {
		for c := 0; c < 2; c++ {
			hashFloats(h, lvl[c]...)
		}
	}
	for _, lvl := range ns.histN {
		for c := 0; c < 2; c++ {
			hashFloats(h, lvl[c]...)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func nsfStateHash(ns *NSF) string {
	h := sha256.New()
	hashInt(h, ns.step)
	hashInt(h, ns.K)
	for c := 0; c < 3; c++ {
		hashFloats(h, ns.U[c][0], ns.U[c][1])
	}
	hashFloats(h, ns.P[0], ns.P[1])
	for _, lvl := range ns.histU {
		for c := 0; c < 3; c++ {
			hashFloats(h, lvl[c][0]...)
			hashFloats(h, lvl[c][1]...)
		}
	}
	for _, lvl := range ns.histN {
		for c := 0; c < 3; c++ {
			hashFloats(h, lvl[c][0]...)
			hashFloats(h, lvl[c][1]...)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func aleStateHash(ns *NSALE) string {
	h := sha256.New()
	hashInt(h, ns.step)
	hashFloats(h, []float64{ns.time})
	hashFloats(h, ns.U[0], ns.U[1], ns.U[2], ns.Pr)
	for _, lvl := range ns.histU {
		for c := 0; c < 3; c++ {
			hashFloats(h, lvl[c]...)
		}
	}
	for _, lvl := range ns.histN {
		for c := 0; c < 3; c++ {
			hashFloats(h, lvl[c]...)
		}
	}
	for _, v := range ns.M.Verts {
		hashFloats(h, v[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestGoldenNS2D(t *testing.T) {
	m := channelMesh(t, 5, 4, 2, 4)
	ns, err := NewNS2D(m, poiseuilleCfg(0.1, 2e-3))
	if err != nil {
		t.Fatal(err)
	}
	ns.SetInitial(func(x, y float64) (float64, float64) { return 1 - y*y, 0 })
	for i := 0; i < 5; i++ {
		ns.Step()
	}
	h := ns2dStateHash(ns)
	t.Logf("NS2D golden: %s", h)
	if goldenNS2D != "PRINT" && h != goldenNS2D {
		t.Fatalf("NS2D trajectory diverged from pre-refactor golden:\n got %s\nwant %s", h, goldenNS2D)
	}
}

func TestGoldenNSF(t *testing.T) {
	got := make([]string, 2)
	_, _, err := simnet.Run(2, aleTestNet(), func(n *simnet.Node) {
		comm := mpi.World(n)
		ns, err := NewNSF(channelMesh(t, 4, 3, 2, 3), nsfChannelCfg(0.1, 2e-3), comm, nil)
		if err != nil {
			panic(err)
		}
		ns.SetUniformInitial(1, 0)
		for i := 0; i < 5; i++ {
			ns.Step()
		}
		got[n.Rank] = nsfStateHash(ns)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("NSF golden: rank0 %s rank1 %s", got[0], got[1])
	for r, want := range []string{goldenNSF0, goldenNSF1} {
		if want != "PRINT" && got[r] != want {
			t.Fatalf("NSF rank %d trajectory diverged from pre-refactor golden:\n got %s\nwant %s", r, got[r], want)
		}
	}
}

func TestGoldenNSALE(t *testing.T) {
	cfg := ALEConfig{
		Nu: 0.05, Dt: 2e-3, Order: 2,
		FarfieldVel: [3]float64{1, 0, 0},
		WallVelocity: func(tm float64) [3]float64 {
			return [3]float64{0, 0.3 * math.Cos(2*math.Pi*tm), 0}
		},
		MoveMesh: true,
	}
	got := make([]string, 2)
	_, _, err := simnet.Run(2, aleTestNet(), func(n *simnet.Node) {
		ns, err := NewNSALE(wingMesh(t, 2, 12, 2, 2), cfg, mpi.World(n), nil)
		if err != nil {
			panic(err)
		}
		ns.SetUniformInitial(1, 0, 0)
		for i := 0; i < 4; i++ {
			ns.Step()
		}
		got[n.Rank] = aleStateHash(ns)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("NSALE golden: rank0 %s rank1 %s", got[0], got[1])
	for r, want := range []string{goldenALE0, goldenALE1} {
		if want != "PRINT" && got[r] != want {
			t.Fatalf("NSALE rank %d trajectory diverged from pre-refactor golden:\n got %s\nwant %s", r, got[r], want)
		}
	}
}
