package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"nektar/internal/mesh"
)

// channelMesh builds a short channel [0,L] x [-1,1] with walls top and
// bottom, inflow left and outflow right.
func channelMesh(t *testing.T, order, nx, ny int, L float64) *mesh.Mesh {
	t.Helper()
	m, err := mesh.RectQuad(order, nx, ny, 0, L, -1, 1, func(x, y, z float64) string {
		switch {
		case y <= -0.999 || y >= 0.999:
			return "wall"
		case x <= 1e-9:
			return "inflow"
		default:
			return "outflow"
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func poiseuilleCfg(nu, dt float64) NS2DConfig {
	return NS2DConfig{
		Nu:    nu,
		Dt:    dt,
		Order: 2,
		VelDirichlet: map[string]VelBC{
			"wall":   ConstantVel(0, 0),
			"inflow": func(x, y float64) (float64, float64) { return 1 - y*y, 0 },
		},
		PresDirichlet: map[string]bool{"outflow": true},
	}
}

func TestPoiseuilleSteadyStateIsPreserved(t *testing.T) {
	// The parabolic profile is an exact steady Navier-Stokes solution
	// representable at order >= 2; starting from it, the splitting
	// scheme must keep it (up to splitting error).
	m := channelMesh(t, 5, 4, 2, 4)
	ns, err := NewNS2D(m, poiseuilleCfg(0.1, 2e-3))
	if err != nil {
		t.Fatal(err)
	}
	exact := func(x, y float64) (float64, float64) { return 1 - y*y, 0 }
	ns.SetInitial(exact)
	if e0 := ns.L2VelocityError(exact); e0 > 1e-8 {
		t.Fatalf("initial projection error %g", e0)
	}
	for i := 0; i < 40; i++ {
		ns.Step()
	}
	if e := ns.L2VelocityError(exact); e > 2e-3 {
		t.Fatalf("steady state drifted: L2 error %g", e)
	}
	if d := ns.MaxDivergence(); d > 0.05 {
		t.Fatalf("divergence %g too large", d)
	}
}

func TestPoiseuilleConvergesFromPerturbedStart(t *testing.T) {
	m := channelMesh(t, 5, 4, 2, 4)
	ns, err := NewNS2D(m, poiseuilleCfg(0.5, 2e-3))
	if err != nil {
		t.Fatal(err)
	}
	exact := func(x, y float64) (float64, float64) { return 1 - y*y, 0 }
	// Perturbed start: uniform plug flow.
	ns.SetInitial(func(x, y float64) (float64, float64) {
		return (1 - y*y) * (1 + 0.2*math.Sin(math.Pi*x)), 0
	})
	e0 := ns.L2VelocityError(exact)
	for i := 0; i < 300; i++ {
		ns.Step()
	}
	e1 := ns.L2VelocityError(exact)
	if e1 > e0/3 {
		t.Fatalf("no convergence toward steady state: %g -> %g", e0, e1)
	}
}

func TestKovasznayFlow(t *testing.T) {
	// Kovasznay's exact steady solution at Re = 40. Velocity Dirichlet
	// everywhere except the outflow (natural + p = 0 is not exactly
	// consistent, so we only require the error to stay small and
	// stable rather than spectral).
	re := 40.0
	lam := re/2 - math.Sqrt(re*re/4+4*math.Pi*math.Pi)
	uex := func(x, y float64) (float64, float64) {
		return 1 - math.Exp(lam*x)*math.Cos(2*math.Pi*y),
			lam / (2 * math.Pi) * math.Exp(lam*x) * math.Sin(2*math.Pi*y)
	}
	m, err := mesh.RectQuad(7, 3, 3, -0.5, 1.0, -0.5, 1.5, func(x, y, z float64) string {
		if x >= 0.999 {
			return "outflow"
		}
		return "in"
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := NS2DConfig{
		Nu: 1 / re, Dt: 1e-3, Order: 2,
		VelDirichlet:  map[string]VelBC{"in": uex},
		PresDirichlet: map[string]bool{"outflow": true},
	}
	ns, err := NewNS2D(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ns.SetInitial(uex)
	for i := 0; i < 200; i++ {
		ns.Step()
	}
	if e := ns.L2VelocityError(uex); e > 0.02 {
		t.Fatalf("Kovasznay error %g", e)
	}
}

func TestBluffBodySmoke(t *testing.T) {
	// A few steps of the paper's serial benchmark configuration at
	// validation scale: impulsive start past a cylinder at Re = 100.
	m, err := mesh.BluffBody(4, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NS2DConfig{
		Nu: 0.01, Dt: 5e-3, Order: 2,
		VelDirichlet: map[string]VelBC{
			"wall":   ConstantVel(0, 0),
			"inflow": ConstantVel(1, 0),
			"side":   ConstantVel(1, 0),
		},
		PresDirichlet: map[string]bool{"outflow": true},
	}
	ns, err := NewNS2D(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ns.SetUniformInitial(1, 0)
	ke0 := ns.KineticEnergy()
	for i := 0; i < 10; i++ {
		ns.Step()
	}
	ke := ns.KineticEnergy()
	if math.IsNaN(ke) || ke <= 0 || ke > 4*ke0 {
		t.Fatalf("kinetic energy unstable: %g -> %g", ke0, ke)
	}
	fx, fy := ns.Forces()
	if math.IsNaN(fx) || math.IsNaN(fy) {
		t.Fatal("forces are NaN")
	}
	if fx <= 0 {
		t.Fatalf("drag %g should be positive for impulsively started flow", fx)
	}
}

func TestStageAccountingCoversStep(t *testing.T) {
	m := channelMesh(t, 4, 3, 2, 3)
	ns, err := NewNS2D(m, poiseuilleCfg(0.1, 1e-3))
	if err != nil {
		t.Fatal(err)
	}
	ns.SetUniformInitial(1, 0)
	ns.Stages().Attach()
	ns.Step()
	ns.Stages().Detach()
	total := ns.Stages().Total()
	if total.TotalFlops() == 0 {
		t.Fatal("no flops recorded")
	}
	// Every stage must have recorded some work.
	for i, name := range ns.Stages().Names {
		c := ns.Stages().Counts[i]
		if c.TotalFlops() == 0 && c.TotalBytes() == 0 {
			t.Fatalf("stage %q recorded nothing", name)
		}
	}
	// The solve stages (5 and 7) must dominate gemv-class work, as in
	// the paper's Figure 12 where matrix inversions are ~60%%.
}

func TestOrderRampUp(t *testing.T) {
	m := channelMesh(t, 3, 2, 2, 2)
	ns, err := NewNS2D(m, poiseuilleCfg(0.1, 1e-3))
	if err != nil {
		t.Fatal(err)
	}
	ns.SetUniformInitial(1, 0)
	if ns.order() != 1 {
		t.Fatal("first step must use order 1")
	}
	ns.Step()
	if ns.order() != 2 {
		t.Fatal("second step must use order 2")
	}
	if ns.StepCount() != 1 {
		t.Fatal("step count wrong")
	}
}

func TestNS2DConfigValidation(t *testing.T) {
	m := channelMesh(t, 2, 2, 2, 2)
	if _, err := NewNS2D(m, NS2DConfig{Nu: 0.1, Dt: 1e-3, Order: 5}); err == nil {
		t.Fatal("order 5 should be rejected")
	}
	if _, err := NewNS2D(m, NS2DConfig{Nu: -1, Dt: 1e-3, Order: 1}); err == nil {
		t.Fatal("negative viscosity should be rejected")
	}
}

func TestNS2DWriteField(t *testing.T) {
	m := channelMesh(t, 3, 2, 2, 2)
	ns, err := NewNS2D(m, poiseuilleCfg(0.1, 1e-3))
	if err != nil {
		t.Fatal(err)
	}
	ns.SetUniformInitial(1, 0)
	ns.Step()
	var b strings.Builder
	if err := ns.WriteField(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "# x y u v p") {
		t.Fatalf("missing header:\n%.80s", out)
	}
	lines := strings.Count(out, "\n")
	wantPts := 0
	for _, el := range m.Elems {
		wantPts += el.Ref.NQuad
	}
	if lines != wantPts+1 {
		t.Fatalf("lines = %d, want %d", lines, wantPts+1)
	}
}

func TestCheckpointRoundTripBitIdentical(t *testing.T) {
	// Save mid-run, keep stepping; a fresh solver restored from the
	// checkpoint must reproduce the exact same trajectory.
	m := channelMesh(t, 4, 3, 2, 3)
	cfg := poiseuilleCfg(0.2, 2e-3)

	ns, err := NewNS2D(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ns.SetInitial(func(x, y float64) (float64, float64) {
		return (1 - y*y) * (1 + 0.1*math.Sin(x)), 0
	})
	for i := 0; i < 5; i++ {
		ns.Step()
	}
	var buf bytes.Buffer
	if err := ns.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ns.Step()
	}

	m2 := channelMesh(t, 4, 3, 2, 3)
	ns2, err := NewNS2D(m2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ns2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if ns2.StepCount() != 5 {
		t.Fatalf("restored step count %d, want 5", ns2.StepCount())
	}
	for i := 0; i < 5; i++ {
		ns2.Step()
	}
	for c := 0; c < 2; c++ {
		for i := range ns.U[c] {
			if ns.U[c][i] != ns2.U[c][i] {
				t.Fatalf("component %d dof %d: %v vs %v — trajectory not bit-identical",
					c, i, ns.U[c][i], ns2.U[c][i])
			}
		}
	}
}

func TestCheckpointRejectsMismatchedMesh(t *testing.T) {
	m := channelMesh(t, 4, 3, 2, 3)
	ns, err := NewNS2D(m, poiseuilleCfg(0.2, 2e-3))
	if err != nil {
		t.Fatal(err)
	}
	ns.SetUniformInitial(1, 0)
	var buf bytes.Buffer
	if err := ns.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	other := channelMesh(t, 3, 2, 2, 2)
	ns2, err := NewNS2D(other, poiseuilleCfg(0.2, 2e-3))
	if err != nil {
		t.Fatal(err)
	}
	if err := ns2.Restore(&buf); err == nil {
		t.Fatal("mismatched checkpoint accepted")
	}
}
