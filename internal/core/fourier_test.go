package core

import (
	"io"
	"math"
	"strings"
	"testing"

	"nektar/internal/machine"
	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

func nsfChannelCfg(nu, dt float64) NSFConfig {
	return NSFConfig{
		Nu: nu, Dt: dt, Order: 2, Lz: 2 * math.Pi,
		VelDirichlet: map[string]VelBC{
			"wall":   ConstantVel(0, 0),
			"inflow": func(x, y float64) (float64, float64) { return 1 - y*y, 0 },
		},
		PresDirichlet: map[string]bool{"outflow": true},
	}
}

func TestNSFMeanModeMatchesSerial2D(t *testing.T) {
	// With all higher Fourier modes zero, the k = 0 mode of Nektar-F
	// must reproduce the serial 2D solver exactly (same splitting,
	// same operators). This ties the parallel implementation to the
	// validated serial one.
	nu, dt := 0.1, 2e-3
	steps := 5

	m2 := channelMesh(t, 4, 3, 2, 3)
	serial, err := NewNS2D(m2, poiseuilleCfg(nu, dt))
	if err != nil {
		t.Fatal(err)
	}
	serial.SetUniformInitial(1, 0)
	for i := 0; i < steps; i++ {
		serial.Step()
	}

	var u0, v0 []float64
	model := &simnet.Model{
		Name:  "test",
		Inter: simnet.LinkModel{LatencyUS: 10, BandwidthMBs: 100, OverheadUS: 1},
	}
	_, _, err = simnet.Run(2, model, func(n *simnet.Node) {
		comm := mpi.World(n)
		mf := channelMesh(t, 4, 3, 2, 3)
		nsf, err := NewNSF(mf, nsfChannelCfg(nu, dt), comm, nil)
		if err != nil {
			panic(err)
		}
		nsf.SetUniformInitial(1, 0)
		for i := 0; i < steps; i++ {
			nsf.Step()
		}
		if comm.Rank() == 0 {
			u0 = nsf.U[0][0]
			v0 = nsf.U[1][0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.U[0] {
		if math.Abs(u0[i]-serial.U[0][i]) > 1e-9 || math.Abs(v0[i]-serial.U[1][i]) > 1e-9 {
			t.Fatalf("dof %d: fourier (%v,%v) vs serial (%v,%v)",
				i, u0[i], v0[i], serial.U[0][i], serial.U[1][i])
		}
	}
}

func TestNSFPerturbationDecays(t *testing.T) {
	// A small 3D disturbance on the higher modes of viscous channel
	// flow must decay (no instability at this Reynolds number).
	var e0, e1 float64
	model := &simnet.Model{
		Name:  "test",
		Inter: simnet.LinkModel{LatencyUS: 10, BandwidthMBs: 100, OverheadUS: 1},
	}
	_, _, err := simnet.Run(2, model, func(n *simnet.Node) {
		comm := mpi.World(n)
		mf := channelMesh(t, 3, 3, 2, 3)
		nsf, err := NewNSF(mf, nsfChannelCfg(0.5, 1e-3), comm, nil)
		if err != nil {
			panic(err)
		}
		nsf.SetUniformInitial(1, 0)
		nsf.PerturbMode(1e-3)
		if comm.Rank() == 1 {
			e0 = nsf.ModeEnergy()
		}
		for i := 0; i < 20; i++ {
			nsf.Step()
		}
		if comm.Rank() == 1 {
			e1 = nsf.ModeEnergy()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if e0 == 0 {
		t.Fatal("perturbation had no energy")
	}
	if e1 >= e0 {
		t.Fatalf("mode-1 energy grew: %g -> %g", e0, e1)
	}
}

func TestNSFTimingOnSimulatedCluster(t *testing.T) {
	// With a CPU model attached, the simulated clocks advance and wall
	// >= cpu on every rank (idle time in the Alltoall).
	pc, err := machine.ByName("Muses")
	if err != nil {
		t.Fatal(err)
	}
	wall, cpu, err := simnet.Run(4, pc.Net, func(n *simnet.Node) {
		comm := mpi.World(n)
		mf := channelMesh(t, 3, 2, 2, 3)
		nsf, err := NewNSF(mf, nsfChannelCfg(0.1, 1e-3), comm, &pc.CPU)
		if err != nil {
			panic(err)
		}
		nsf.SetUniformInitial(1, 0)
		for i := 0; i < 2; i++ {
			nsf.Step()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := range wall {
		if cpu[r] <= 0 {
			t.Fatalf("rank %d: cpu time %v", r, cpu[r])
		}
		if wall[r] < cpu[r] {
			t.Fatalf("rank %d: wall %v < cpu %v", r, wall[r], cpu[r])
		}
	}
	// Communication must cost something: some rank idles.
	var anyGap bool
	for r := range wall {
		if wall[r] > cpu[r]*1.0001 {
			anyGap = true
		}
	}
	if !anyGap {
		t.Fatal("no rank shows any communication wait")
	}
}

func TestNSFRejectsBadConfig(t *testing.T) {
	m := channelMesh(t, 2, 2, 2, 2)
	model := &simnet.Model{Name: "t", Inter: simnet.LinkModel{LatencyUS: 1, BandwidthMBs: 100}}
	_, _, err := simnet.Run(3, model, func(n *simnet.Node) {
		// 3 ranks -> 6 planes: not a power of two.
		_, err := NewNSF(m, nsfChannelCfg(0.1, 1e-3), mpi.World(n), nil)
		if err == nil {
			panic("expected error for non-power-of-two planes")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNSFStatisticsAndIO(t *testing.T) {
	model := &simnet.Model{
		Name:  "test",
		Inter: simnet.LinkModel{LatencyUS: 10, BandwidthMBs: 100, OverheadUS: 1},
	}
	var stats FlowStats
	var hist [][]float64
	var field strings.Builder
	_, _, err := simnet.Run(2, model, func(n *simnet.Node) {
		comm := mpi.World(n)
		mf := channelMesh(t, 3, 3, 2, 3)
		nsf, err := NewNSF(mf, nsfChannelCfg(0.1, 1e-3), comm, nil)
		if err != nil {
			panic(err)
		}
		nsf.SetUniformInitial(1, 0)
		for i := 0; i < 3; i++ {
			nsf.Step()
		}
		s := nsf.Statistics()
		h := nsf.HistoryPoint(1.5, 0.0)
		var w io.Writer
		if comm.Rank() == 0 {
			stats = s
			hist = h
			w = &field
		}
		if err := nsf.WriteField(w); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Energy <= 0 || math.IsNaN(stats.Energy) {
		t.Fatalf("energy %v", stats.Energy)
	}
	if stats.MaxVel < 0.5 || stats.MaxVel > 3 {
		t.Fatalf("max velocity %v for channel flow", stats.MaxVel)
	}
	if stats.CFL <= 0 {
		t.Fatalf("CFL %v", stats.CFL)
	}
	if len(stats.ModeErgs) != 2 || stats.ModeErgs[0] <= stats.ModeErgs[1] {
		t.Fatalf("mode spectrum %v: mean mode must dominate", stats.ModeErgs)
	}
	if len(hist) != 2 || len(hist[0]) != 6 {
		t.Fatalf("history gather shape: %v", hist)
	}
	// Near mid-channel the streamwise velocity is close to its
	// parabolic value.
	if hist[0][0] < 0.3 || hist[0][0] > 1.5 {
		t.Fatalf("history u = %v", hist[0][0])
	}
	if !strings.Contains(field.String(), "mean Fourier mode") || strings.Count(field.String(), "\n") < 10 {
		t.Fatalf("field output too short:\n%.200s", field.String())
	}
}
