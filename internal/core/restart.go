package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"nektar/internal/machine"
	"nektar/internal/mesh"
	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

// Crash-recovery harness: runs a solver on the simulated cluster under
// a fault plan, checkpointing every K steps into (in-memory) per-rank
// restart files. When an injected node crash kills the run, the
// harness restarts it from the last checkpoint every rank completed,
// exactly as the paper's 250-CPU-hour production runs survived
// commodity hardware: "restart files". Because the solver state
// round-trips bit-identically and the arithmetic does not depend on
// the virtual clock, the recovered trajectory matches an unfaulted
// reference run exactly. The attempt loop is shared between the
// Fourier and ALE harnesses below; package supervisor builds the
// fully-automatic version (failure detection, hot spares, watchdog)
// on the same checkpoint-commit rule.

// recoverySolver is the slice of a solver the generic attempt loop
// needs; NSF and NSALE both satisfy it.
type recoverySolver interface {
	Step()
	StepCount() int
	SaveState(w io.Writer) error
	LoadState(r io.Reader) error
}

// FourierRecovery configures a fault-tolerant Fourier run.
type FourierRecovery struct {
	Procs int
	Model *simnet.Model
	CPU   *machine.CPU

	// Mesh builds a fresh 2D cross-section mesh; called once per rank
	// per attempt (solver construction mutates per-rank operator
	// state, so ranks do not share a mesh).
	Mesh func() (*mesh.Mesh, error)
	Cfg  NSFConfig
	// InitU, InitV seed the mean mode (SetUniformInitial).
	InitU, InitV float64

	// Steps is the target step count; CheckpointEvery the interval in
	// steps (0 disables checkpointing and therefore recovery).
	Steps           int
	CheckpointEvery int
	// CheckpointCostS charges each checkpoint as blocking I/O on every
	// rank's virtual wall clock (no CPU), e.g. bytes/diskBandwidth.
	CheckpointCostS float64

	// Plans[i] is the fault plan for attempt i (nil = fault-free); a
	// re-run after a crash must not replay the same crash, so each
	// attempt gets its own plan. Attempts beyond len(Plans) run
	// fault-free.
	Plans []simnet.Injector
	// Rel enables reliable MPI delivery (needed when a plan drops
	// messages; crashes alone do not require it).
	Rel *mpi.Reliability
	// MaxAttempts bounds the total runs (default len(Plans)+1).
	MaxAttempts int
}

// ALERecovery configures a fault-tolerant Nektar-ALE run (the
// moving-mesh solver): same attempt loop, domain-decomposed solver.
type ALERecovery struct {
	Procs int
	Model *simnet.Model
	CPU   *machine.CPU

	// Mesh builds a fresh 3D mesh; called once per rank per attempt.
	Mesh func() (*mesh.Mesh, error)
	Cfg  ALEConfig
	// InitVel seeds the uniform initial velocity.
	InitVel [3]float64

	Steps           int
	CheckpointEvery int
	CheckpointCostS float64

	Plans       []simnet.Injector
	Rel         *mpi.Reliability
	MaxAttempts int
}

// RecoveryResult reports how a fault-tolerant run went.
type RecoveryResult struct {
	// Attempts is the number of runs launched (1 = no failures).
	Attempts int
	// Crashes records the error of each failed attempt.
	Crashes []error
	// StepsComputed counts solver steps executed on rank 0 across all
	// attempts; minus Steps, that is the recomputation wasted by
	// rolling back to checkpoints.
	StepsComputed int
	// VirtualWall sums the maximum per-rank virtual wall clock over
	// all attempts: the wall time the whole campaign took, including
	// checkpoint I/O, lost work, and the recovery re-runs.
	VirtualWall float64
	// Final holds each rank's final serialized solver state (gob is
	// deterministic, so equal trajectories give equal bytes).
	Final [][]byte
	// Fields holds each rank's final velocity state ([comp][plane]);
	// Fourier runs only.
	Fields [][3][2][]float64
}

// recoveryRun is the solver-agnostic core of the harness: the attempt
// loop, per-rank checkpoint staging, and the commit rule (newest step
// present on every rank).
type recoveryRun struct {
	procs, steps, every, maxAttempts int
	cost                             float64
	model                            *simnet.Model
	plans                            []simnet.Injector
	rel                              *mpi.Reliability
	// newSolver builds (or rebuilds) this rank's solver at the start of
	// an attempt.
	newSolver func(rank int, comm *mpi.Comm) (recoverySolver, error)
}

func runRecovery(rc recoveryRun) (*RecoveryResult, error) {
	if rc.procs < 1 || rc.steps < 1 {
		return nil, fmt.Errorf("core: recovery needs at least one rank and one step")
	}
	maxAttempts := rc.maxAttempts
	if maxAttempts <= 0 {
		maxAttempts = len(rc.plans) + 1
	}
	res := &RecoveryResult{}
	// The committed checkpoint: the newest step every rank has staged.
	committedStep := -1
	var committed [][]byte

	for attempt := 0; attempt < maxAttempts; attempt++ {
		var inj simnet.Injector
		if attempt < len(rc.plans) {
			inj = rc.plans[attempt]
		}
		// Per-rank staging area for this attempt's checkpoints. Each
		// rank writes only its own map, and the scheduler serializes
		// rank execution, so no locking is needed; the harness reads
		// them only after the run ends.
		staged := make([]map[int][]byte, rc.procs)
		final := make([][]byte, rc.procs)
		stepsRun := make([]int, rc.procs)

		wall, _, err := simnet.RunWithFaults(rc.procs, rc.model, inj, func(n *simnet.Node) {
			comm := mpi.World(n)
			if rc.rel != nil {
				comm.SetReliability(rc.rel)
			}
			s, serr := rc.newSolver(n.Rank, comm)
			if serr != nil {
				panic(serr)
			}
			staged[n.Rank] = map[int][]byte{}
			if committedStep >= 0 {
				if lerr := s.LoadState(bytes.NewReader(committed[n.Rank])); lerr != nil {
					panic(lerr)
				}
			}
			for s.StepCount() < rc.steps {
				s.Step()
				stepsRun[n.Rank]++
				if rc.every > 0 && s.StepCount()%rc.every == 0 && s.StepCount() < rc.steps {
					var buf bytes.Buffer
					if werr := s.SaveState(&buf); werr != nil {
						panic(werr)
					}
					staged[n.Rank][s.StepCount()] = buf.Bytes()
					if rc.cost > 0 {
						comm.Sleep(rc.cost)
					}
				}
			}
			var buf bytes.Buffer
			if werr := s.SaveState(&buf); werr != nil {
				panic(werr)
			}
			final[n.Rank] = buf.Bytes()
		})
		res.Attempts++
		res.StepsComputed += stepsRun[0]
		res.VirtualWall += maxFloat(wall)

		if err == nil {
			res.Final = final
			return res, nil
		}
		var ce *simnet.CrashError
		if !errors.As(err, &ce) {
			return nil, fmt.Errorf("core: recovery attempt %d failed without a crash: %w", attempt, err)
		}
		res.Crashes = append(res.Crashes, ce)
		if s := commitNewest(staged, rc.procs); s > committedStep {
			committedStep = s
			committed = make([][]byte, rc.procs)
			for r := 0; r < rc.procs; r++ {
				committed[r] = staged[r][s]
			}
		}
		// Without any usable checkpoint the next attempt restarts from
		// step 0 — still correct, just maximally wasteful.
	}
	return nil, fmt.Errorf("core: recovery exhausted %d attempts (%d crashes)", maxAttempts, len(res.Crashes))
}

// commitNewest returns the newest checkpoint step present on every
// rank, or -1 (ranks may differ by one interval when the crash hit
// mid-step).
func commitNewest(staged []map[int][]byte, procs int) int {
	best := -1
	for s := range staged[0] {
		onAll := true
		for r := 1; r < procs; r++ {
			if _, ok := staged[r][s]; !ok {
				onAll = false
				break
			}
		}
		if onAll && s > best {
			best = s
		}
	}
	return best
}

// RunFourierRecovery executes the configured run, restarting from the
// last complete checkpoint after every injected crash. It fails if a
// non-crash error occurs or MaxAttempts is exhausted.
func RunFourierRecovery(rc FourierRecovery) (*RecoveryResult, error) {
	// solvers keeps the latest attempt's per-rank solver so the final
	// velocity fields can be reported after success.
	solvers := make([]*NSF, rc.Procs)
	res, err := runRecovery(recoveryRun{
		procs: rc.Procs, steps: rc.Steps, every: rc.CheckpointEvery,
		maxAttempts: rc.MaxAttempts, cost: rc.CheckpointCostS,
		model: rc.Model, plans: rc.Plans, rel: rc.Rel,
		newSolver: func(rank int, comm *mpi.Comm) (recoverySolver, error) {
			m, merr := rc.Mesh()
			if merr != nil {
				return nil, merr
			}
			ns, nerr := NewNSF(m, rc.Cfg, comm, rc.CPU)
			if nerr != nil {
				return nil, nerr
			}
			ns.SetUniformInitial(rc.InitU, rc.InitV)
			solvers[rank] = ns
			return ns, nil
		},
	})
	if err != nil {
		return nil, err
	}
	res.Fields = make([][3][2][]float64, rc.Procs)
	for r, ns := range solvers {
		res.Fields[r] = ns.U
	}
	return res, nil
}

// RunALERecovery executes the configured moving-mesh run, restarting
// from the last complete checkpoint after every injected crash.
func RunALERecovery(rc ALERecovery) (*RecoveryResult, error) {
	return runRecovery(recoveryRun{
		procs: rc.Procs, steps: rc.Steps, every: rc.CheckpointEvery,
		maxAttempts: rc.MaxAttempts, cost: rc.CheckpointCostS,
		model: rc.Model, plans: rc.Plans, rel: rc.Rel,
		newSolver: func(rank int, comm *mpi.Comm) (recoverySolver, error) {
			m, merr := rc.Mesh()
			if merr != nil {
				return nil, merr
			}
			ns, nerr := NewNSALE(m, rc.Cfg, comm, rc.CPU)
			if nerr != nil {
				return nil, nerr
			}
			ns.SetUniformInitial(rc.InitVel[0], rc.InitVel[1], rc.InitVel[2])
			return ns, nil
		},
	})
}

func maxFloat(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
