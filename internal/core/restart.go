package core

import (
	"errors"
	"fmt"

	"nektar/internal/ckpt"
	"nektar/internal/engine"
	"nektar/internal/machine"
	"nektar/internal/mesh"
	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

// Crash-recovery harness: runs a solver on the simulated cluster under
// a fault plan, checkpointing every K steps into (in-memory) per-rank
// restart files. When an injected node crash kills the run, the
// harness restarts it from the last checkpoint every rank completed,
// exactly as the paper's 250-CPU-hour production runs survived
// commodity hardware: "restart files". Because the solver state
// round-trips bit-identically and the arithmetic does not depend on
// the virtual clock, the recovered trajectory matches an unfaulted
// reference run exactly. The attempt loop drives any engine.Solver —
// the Fourier and ALE harnesses below are thin factories — and package
// supervisor builds the fully-automatic version (failure detection,
// hot spares, watchdog) on the same checkpoint-commit rule.

// Recovery is the solver-agnostic fault-tolerant run: the attempt
// loop, per-rank checkpoint staging, and the commit rule (newest step
// present on every rank).
type Recovery struct {
	Procs int
	Model *simnet.Model

	// NewSolver builds (or rebuilds) one rank's solver at the start of
	// each attempt.
	NewSolver func(rank int, comm *mpi.Comm) (engine.Solver, error)

	// Steps is the target step count; CheckpointEvery the interval in
	// steps (0 disables checkpointing and therefore recovery).
	Steps           int
	CheckpointEvery int
	// CheckpointCostS charges each checkpoint as blocking I/O on every
	// rank's virtual wall clock (no CPU), e.g. bytes/diskBandwidth.
	CheckpointCostS float64

	// Plans[i] is the fault plan for attempt i (nil = fault-free); a
	// re-run after a crash must not replay the same crash, so each
	// attempt gets its own plan. Attempts beyond len(Plans) run
	// fault-free.
	Plans []simnet.Injector
	// Rel enables reliable MPI delivery (needed when a plan drops
	// messages; crashes alone do not require it).
	Rel *mpi.Reliability
	// MaxAttempts bounds the total runs (default len(Plans)+1).
	MaxAttempts int

	// Trace receives the engine's per-step event stream plus rollback
	// markers when attempts resume from a committed checkpoint.
	Trace *engine.Tracer

	// Store, when set, makes every staged checkpoint durable (framed,
	// compressed, CRC-protected — see internal/ckpt) and the commit
	// rule corruption-aware: an attempt resumes from the newest step
	// whose records verify on every rank, falling back past torn or
	// bit-flipped records. A pre-populated store also warm-starts the
	// whole run (cross-process resume). Kind tags the records.
	Store ckpt.Store
	Kind  string
}

// FourierRecovery configures a fault-tolerant Fourier run.
type FourierRecovery struct {
	Procs int
	Model *simnet.Model
	CPU   *machine.CPU

	// Mesh builds a fresh 2D cross-section mesh; called once per rank
	// per attempt (solver construction mutates per-rank operator
	// state, so ranks do not share a mesh).
	Mesh func() (*mesh.Mesh, error)
	Cfg  NSFConfig
	// InitU, InitV seed the mean mode (SetUniformInitial).
	InitU, InitV float64

	Steps           int
	CheckpointEvery int
	CheckpointCostS float64

	Plans       []simnet.Injector
	Rel         *mpi.Reliability
	MaxAttempts int
	Trace       *engine.Tracer
}

// ALERecovery configures a fault-tolerant Nektar-ALE run (the
// moving-mesh solver): same attempt loop, domain-decomposed solver.
type ALERecovery struct {
	Procs int
	Model *simnet.Model
	CPU   *machine.CPU

	// Mesh builds a fresh 3D mesh; called once per rank per attempt.
	Mesh func() (*mesh.Mesh, error)
	Cfg  ALEConfig
	// InitVel seeds the uniform initial velocity.
	InitVel [3]float64

	Steps           int
	CheckpointEvery int
	CheckpointCostS float64

	Plans       []simnet.Injector
	Rel         *mpi.Reliability
	MaxAttempts int
	Trace       *engine.Tracer
}

// RecoveryResult reports how a fault-tolerant run went.
type RecoveryResult struct {
	// Attempts is the number of runs launched (1 = no failures).
	Attempts int
	// Crashes records the error of each failed attempt.
	Crashes []error
	// StepsComputed counts solver steps executed on rank 0 across all
	// attempts; minus Steps, that is the recomputation wasted by
	// rolling back to checkpoints.
	StepsComputed int
	// VirtualWall sums the maximum per-rank virtual wall clock over
	// all attempts: the wall time the whole campaign took, including
	// checkpoint I/O, lost work, and the recovery re-runs.
	VirtualWall float64
	// Final holds each rank's final serialized solver state (gob is
	// deterministic, so equal trajectories give equal bytes).
	Final [][]byte
	// Fields holds each rank's final velocity state ([comp][plane]);
	// Fourier runs only.
	Fields [][3][2][]float64
}

// RunRecovery executes the configured run to completion, restarting
// from the last complete checkpoint after every injected crash. It
// fails if a non-crash error occurs or MaxAttempts is exhausted.
func RunRecovery(rc Recovery) (*RecoveryResult, error) {
	if rc.Procs < 1 || rc.Steps < 1 {
		return nil, fmt.Errorf("core: recovery needs at least one rank and one step")
	}
	if rc.NewSolver == nil {
		return nil, fmt.Errorf("core: recovery needs a solver factory")
	}
	maxAttempts := rc.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = len(rc.Plans) + 1
	}
	res := &RecoveryResult{}
	// The committed checkpoint: the newest step every rank has staged.
	committedStep := -1
	var committed [][]byte
	// A durable store may already hold a usable checkpoint from an
	// earlier (killed) process — resume from it.
	if rc.Store != nil {
		s, states, serr := ckpt.Latest(rc.Store, rc.Procs)
		if serr != nil {
			return nil, fmt.Errorf("core: reading checkpoint store: %w", serr)
		}
		if s >= 0 {
			committedStep, committed = s, states
		}
	}

	for attempt := 0; attempt < maxAttempts; attempt++ {
		var inj simnet.Injector
		if attempt < len(rc.Plans) {
			inj = rc.Plans[attempt]
		}
		// Per-rank staging area for this attempt's checkpoints. Each
		// rank writes only its own map, and the scheduler serializes
		// rank execution, so no locking is needed; the harness reads
		// them only after the run ends.
		staged := make([]map[int][]byte, rc.Procs)
		final := make([][]byte, rc.Procs)
		stepsRun := make([]int, rc.Procs)

		wall, _, err := simnet.RunWithFaults(rc.Procs, rc.Model, inj, func(n *simnet.Node) {
			comm := mpi.World(n)
			if rc.Rel != nil {
				comm.SetReliability(rc.Rel)
			}
			s, serr := rc.NewSolver(n.Rank, comm)
			if serr != nil {
				panic(serr)
			}
			staged[n.Rank] = map[int][]byte{}
			if committedStep >= 0 {
				if lerr := engine.Restore(s, committed[n.Rank]); lerr != nil {
					panic(lerr)
				}
				if rc.Trace != nil {
					rc.Trace.Emit(engine.Event{
						Ev: engine.EvRollback, Rank: n.Rank,
						Step: committedStep, Attempt: attempt,
					})
				}
			}
			loop := engine.Loop{
				Solver: s, Steps: rc.Steps, Rank: n.Rank,
				CheckpointEvery: rc.CheckpointEvery,
				OnCheckpoint: func(step int, state []byte) {
					staged[n.Rank][step] = state
					if rc.Store != nil {
						if _, perr := rc.Store.Put(ckpt.Meta{Kind: rc.Kind, Rank: n.Rank, Step: step}, state); perr != nil {
							panic(perr)
						}
					}
					if rc.CheckpointCostS > 0 {
						comm.Sleep(rc.CheckpointCostS)
					}
				},
				OnStep:   func(int) { stepsRun[n.Rank]++ },
				Watchdog: engine.Watchdog{Disabled: true},
				Trace:    rc.Trace,
			}
			lres, lerr := loop.Run()
			if lerr != nil {
				panic(lerr)
			}
			final[n.Rank] = lres.Final
		})
		res.Attempts++
		res.StepsComputed += stepsRun[0]
		res.VirtualWall += maxFloat(wall)

		if err == nil {
			res.Final = final
			return res, nil
		}
		var ce *simnet.CrashError
		if !errors.As(err, &ce) {
			return nil, fmt.Errorf("core: recovery attempt %d failed without a crash: %w", attempt, err)
		}
		res.Crashes = append(res.Crashes, ce)
		if rc.Store != nil {
			// Re-read through the store so the commit is what actually
			// verifies on disk: a torn or bit-flipped record demotes its
			// step and Latest falls back to the previous complete one.
			s, states, serr := ckpt.Latest(rc.Store, rc.Procs)
			if serr != nil {
				return nil, fmt.Errorf("core: reading checkpoint store after crash: %w", serr)
			}
			if s > committedStep {
				committedStep, committed = s, states
			}
		} else if s := commitNewest(staged, rc.Procs); s > committedStep {
			committedStep = s
			committed = make([][]byte, rc.Procs)
			for r := 0; r < rc.Procs; r++ {
				committed[r] = staged[r][s]
			}
		}
		// Without any usable checkpoint the next attempt restarts from
		// step 0 — still correct, just maximally wasteful.
	}
	return nil, fmt.Errorf("core: recovery exhausted %d attempts (%d crashes)", maxAttempts, len(res.Crashes))
}

// commitNewest returns the newest checkpoint step present on every
// rank, or -1 (ranks may differ by one interval when the crash hit
// mid-step).
func commitNewest(staged []map[int][]byte, procs int) int {
	best := -1
	for s := range staged[0] {
		onAll := true
		for r := 1; r < procs; r++ {
			if _, ok := staged[r][s]; !ok {
				onAll = false
				break
			}
		}
		if onAll && s > best {
			best = s
		}
	}
	return best
}

// RunFourierRecovery executes the configured run, restarting from the
// last complete checkpoint after every injected crash.
func RunFourierRecovery(rc FourierRecovery) (*RecoveryResult, error) {
	// solvers keeps the latest attempt's per-rank solver so the final
	// velocity fields can be reported after success.
	solvers := make([]*NSF, rc.Procs)
	res, err := RunRecovery(Recovery{
		Procs: rc.Procs, Steps: rc.Steps, CheckpointEvery: rc.CheckpointEvery,
		MaxAttempts: rc.MaxAttempts, CheckpointCostS: rc.CheckpointCostS,
		Model: rc.Model, Plans: rc.Plans, Rel: rc.Rel, Trace: rc.Trace,
		NewSolver: func(rank int, comm *mpi.Comm) (engine.Solver, error) {
			m, merr := rc.Mesh()
			if merr != nil {
				return nil, merr
			}
			ns, nerr := NewNSF(m, rc.Cfg, comm, rc.CPU)
			if nerr != nil {
				return nil, nerr
			}
			ns.SetUniformInitial(rc.InitU, rc.InitV)
			solvers[rank] = ns
			return ns, nil
		},
	})
	if err != nil {
		return nil, err
	}
	res.Fields = make([][3][2][]float64, rc.Procs)
	for r, ns := range solvers {
		res.Fields[r] = ns.U
	}
	return res, nil
}

// RunALERecovery executes the configured moving-mesh run, restarting
// from the last complete checkpoint after every injected crash.
func RunALERecovery(rc ALERecovery) (*RecoveryResult, error) {
	return RunRecovery(Recovery{
		Procs: rc.Procs, Steps: rc.Steps, CheckpointEvery: rc.CheckpointEvery,
		MaxAttempts: rc.MaxAttempts, CheckpointCostS: rc.CheckpointCostS,
		Model: rc.Model, Plans: rc.Plans, Rel: rc.Rel, Trace: rc.Trace,
		NewSolver: func(rank int, comm *mpi.Comm) (engine.Solver, error) {
			m, merr := rc.Mesh()
			if merr != nil {
				return nil, merr
			}
			ns, nerr := NewNSALE(m, rc.Cfg, comm, rc.CPU)
			if nerr != nil {
				return nil, nerr
			}
			ns.SetUniformInitial(rc.InitVel[0], rc.InitVel[1], rc.InitVel[2])
			return ns, nil
		},
	})
}

func maxFloat(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
