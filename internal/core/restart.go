package core

import (
	"bytes"
	"errors"
	"fmt"

	"nektar/internal/machine"
	"nektar/internal/mesh"
	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

// Crash-recovery harness: runs the Fourier solver on the simulated
// cluster under a fault plan, checkpointing every K steps into
// (in-memory) per-rank restart files. When an injected node crash
// kills the run, the harness restarts it from the last checkpoint
// every rank completed, exactly as the paper's 250-CPU-hour
// production runs survived commodity hardware: "restart files".
// Because the solver state round-trips bit-identically and the
// arithmetic does not depend on the virtual clock, the recovered
// trajectory matches an unfaulted reference run exactly.

// FourierRecovery configures a fault-tolerant Fourier run.
type FourierRecovery struct {
	Procs int
	Model *simnet.Model
	CPU   *machine.CPU

	// Mesh builds a fresh 2D cross-section mesh; called once per rank
	// per attempt (solver construction mutates per-rank operator
	// state, so ranks do not share a mesh).
	Mesh func() (*mesh.Mesh, error)
	Cfg  NSFConfig
	// InitU, InitV seed the mean mode (SetUniformInitial).
	InitU, InitV float64

	// Steps is the target step count; CheckpointEvery the interval in
	// steps (0 disables checkpointing and therefore recovery).
	Steps           int
	CheckpointEvery int
	// CheckpointCostS charges each checkpoint as blocking I/O on every
	// rank's virtual wall clock (no CPU), e.g. bytes/diskBandwidth.
	CheckpointCostS float64

	// Plans[i] is the fault plan for attempt i (nil = fault-free); a
	// re-run after a crash must not replay the same crash, so each
	// attempt gets its own plan. Attempts beyond len(Plans) run
	// fault-free.
	Plans []simnet.Injector
	// Rel enables reliable MPI delivery (needed when a plan drops
	// messages; crashes alone do not require it).
	Rel *mpi.Reliability
	// MaxAttempts bounds the total runs (default len(Plans)+1).
	MaxAttempts int
}

// RecoveryResult reports how a fault-tolerant run went.
type RecoveryResult struct {
	// Attempts is the number of runs launched (1 = no failures).
	Attempts int
	// Crashes records the error of each failed attempt.
	Crashes []error
	// StepsComputed counts solver steps executed on rank 0 across all
	// attempts; minus Steps, that is the recomputation wasted by
	// rolling back to checkpoints.
	StepsComputed int
	// VirtualWall sums the maximum per-rank virtual wall clock over
	// all attempts: the wall time the whole campaign took, including
	// checkpoint I/O, lost work, and the recovery re-runs.
	VirtualWall float64
	// Fields holds each rank's final velocity state ([comp][plane]).
	Fields [][3][2][]float64
}

// RunFourierRecovery executes the configured run, restarting from the
// last complete checkpoint after every injected crash. It fails if a
// non-crash error occurs or MaxAttempts is exhausted.
func RunFourierRecovery(rc FourierRecovery) (*RecoveryResult, error) {
	if rc.Procs < 1 || rc.Steps < 1 {
		return nil, fmt.Errorf("core: recovery needs at least one rank and one step")
	}
	maxAttempts := rc.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = len(rc.Plans) + 1
	}
	res := &RecoveryResult{}
	// The committed checkpoint: the newest step every rank has staged.
	committedStep := -1
	var committed [][]byte

	for attempt := 0; attempt < maxAttempts; attempt++ {
		var inj simnet.Injector
		if attempt < len(rc.Plans) {
			inj = rc.Plans[attempt]
		}
		// Per-rank staging area for this attempt's checkpoints. Each
		// rank writes only its own map, and the scheduler serializes
		// rank execution, so no locking is needed; the harness reads
		// them only after the run ends.
		staged := make([]map[int][]byte, rc.Procs)
		fields := make([][3][2][]float64, rc.Procs)
		stepsRun := make([]int, rc.Procs)

		wall, _, err := simnet.RunWithFaults(rc.Procs, rc.Model, inj, func(n *simnet.Node) {
			comm := mpi.World(n)
			if rc.Rel != nil {
				comm.SetReliability(rc.Rel)
			}
			m, merr := rc.Mesh()
			if merr != nil {
				panic(merr)
			}
			ns, nerr := NewNSF(m, rc.Cfg, comm, rc.CPU)
			if nerr != nil {
				panic(nerr)
			}
			ns.SetUniformInitial(rc.InitU, rc.InitV)
			staged[n.Rank] = map[int][]byte{}
			if committedStep >= 0 {
				if lerr := ns.LoadState(bytes.NewReader(committed[n.Rank])); lerr != nil {
					panic(lerr)
				}
			}
			for ns.step < rc.Steps {
				ns.Step()
				stepsRun[n.Rank]++
				if rc.CheckpointEvery > 0 && ns.step%rc.CheckpointEvery == 0 && ns.step < rc.Steps {
					var buf bytes.Buffer
					if serr := ns.SaveState(&buf); serr != nil {
						panic(serr)
					}
					staged[n.Rank][ns.step] = buf.Bytes()
					if rc.CheckpointCostS > 0 {
						comm.Sleep(rc.CheckpointCostS)
					}
				}
			}
			fields[n.Rank] = ns.U
		})
		res.Attempts++
		res.StepsComputed += stepsRun[0]
		res.VirtualWall += maxFloat(wall)

		if err == nil {
			res.Fields = fields
			return res, nil
		}
		var ce *simnet.CrashError
		if !errors.As(err, &ce) {
			return nil, fmt.Errorf("core: recovery attempt %d failed without a crash: %w", attempt, err)
		}
		res.Crashes = append(res.Crashes, ce)
		// Commit the newest checkpoint present on every rank (ranks may
		// differ by one interval when the crash hit mid-step).
		best := -1
		for s := range staged[0] {
			onAll := true
			for r := 1; r < rc.Procs; r++ {
				if _, ok := staged[r][s]; !ok {
					onAll = false
					break
				}
			}
			if onAll && s > best {
				best = s
			}
		}
		if best > committedStep {
			committedStep = best
			committed = make([][]byte, rc.Procs)
			for r := 0; r < rc.Procs; r++ {
				committed[r] = staged[r][best]
			}
		}
		// Without any usable checkpoint the next attempt restarts from
		// step 0 — still correct, just maximally wasteful.
	}
	return nil, fmt.Errorf("core: recovery exhausted %d attempts (%d crashes)", maxAttempts, len(res.Crashes))
}

func maxFloat(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
