package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"nektar/internal/fault"
	"nektar/internal/mesh"
	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

func TestNSFCheckpointRoundTripBitIdentical(t *testing.T) {
	// Save the parallel Fourier solver mid-run, reload into a fresh
	// solver, continue both, and demand bit-identical fields.
	nu, dt := 0.1, 2e-3
	const preSteps, postSteps = 3, 3
	cfg := nsfChannelCfg(nu, dt)
	_, _, err := simnet.Run(2, aleTestNet(), func(n *simnet.Node) {
		comm := mpi.World(n)
		ns, err := NewNSF(channelMesh(t, 4, 3, 2, 3), cfg, comm, nil)
		if err != nil {
			panic(err)
		}
		ns.SetUniformInitial(1, 0)
		for i := 0; i < preSteps; i++ {
			ns.Step()
		}
		var buf bytes.Buffer
		if err := ns.Checkpoint(&buf); err != nil {
			panic(err)
		}
		for i := 0; i < postSteps; i++ {
			ns.Step()
		}

		ns2, err := NewNSF(channelMesh(t, 4, 3, 2, 3), cfg, comm, nil)
		if err != nil {
			panic(err)
		}
		if err := ns2.Restore(&buf); err != nil {
			panic(err)
		}
		if ns2.step != preSteps {
			t.Errorf("rank %d: restored step = %d, want %d", comm.Rank(), ns2.step, preSteps)
		}
		for i := 0; i < postSteps; i++ {
			ns2.Step()
		}
		for c := 0; c < 3; c++ {
			for part := 0; part < 2; part++ {
				for i := range ns.U[c][part] {
					if ns.U[c][part][i] != ns2.U[c][part][i] {
						t.Fatalf("rank %d: U[%d][%d][%d] differs after restart: %v vs %v",
							comm.Rank(), c, part, i, ns.U[c][part][i], ns2.U[c][part][i])
					}
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestALECheckpointRoundTripBitIdentical(t *testing.T) {
	// The moving-mesh ALE solver: the checkpoint must capture the
	// displaced geometry and the simulation time as well as the
	// fields. Runs domain-decomposed on 2 ranks.
	cfg := ALEConfig{
		Nu: 0.05, Dt: 2e-3, Order: 2,
		FarfieldVel: [3]float64{1, 0, 0},
		WallVelocity: func(t float64) [3]float64 {
			return [3]float64{0, 0.3 * math.Cos(2*math.Pi*t), 0}
		},
		MoveMesh: true,
	}
	const preSteps, postSteps = 2, 2
	_, _, err := simnet.Run(2, aleTestNet(), func(n *simnet.Node) {
		comm := mpi.World(n)
		ns, err := NewNSALE(wingMesh(t, 2, 12, 2, 2), cfg, comm, nil)
		if err != nil {
			panic(err)
		}
		ns.SetUniformInitial(1, 0, 0)
		for i := 0; i < preSteps; i++ {
			ns.Step()
		}
		var buf bytes.Buffer
		if err := ns.Checkpoint(&buf); err != nil {
			panic(err)
		}
		for i := 0; i < postSteps; i++ {
			ns.Step()
		}

		ns2, err := NewNSALE(wingMesh(t, 2, 12, 2, 2), cfg, comm, nil)
		if err != nil {
			panic(err)
		}
		if err := ns2.Restore(&buf); err != nil {
			panic(err)
		}
		if ns2.time != ns.time-float64(postSteps)*cfg.Dt {
			t.Errorf("rank %d: restored time = %v", comm.Rank(), ns2.time)
		}
		for i := 0; i < postSteps; i++ {
			ns2.Step()
		}
		for c := 0; c < 3; c++ {
			for i := range ns.U[c] {
				if ns.U[c][i] != ns2.U[c][i] {
					t.Fatalf("rank %d: U[%d][%d] differs after restart: %v vs %v",
						comm.Rank(), c, i, ns.U[c][i], ns2.U[c][i])
				}
			}
		}
		for i := range ns.Pr {
			if ns.Pr[i] != ns2.Pr[i] {
				t.Fatalf("rank %d: Pr[%d] differs after restart", comm.Rank(), i)
			}
		}
		for v := range ns.M.Verts {
			if ns.M.Verts[v] != ns2.M.Verts[v] {
				t.Fatalf("rank %d: vertex %d differs after restart", comm.Rank(), v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointCorruptedStream(t *testing.T) {
	// Truncated and garbage checkpoints must fail with a clean decode
	// error, never restore partial state.
	_, _, err := simnet.Run(2, aleTestNet(), func(n *simnet.Node) {
		comm := mpi.World(n)
		ns, err := NewNSF(channelMesh(t, 4, 3, 2, 3), nsfChannelCfg(0.1, 2e-3), comm, nil)
		if err != nil {
			panic(err)
		}
		ns.SetUniformInitial(1, 0)
		ns.Step()
		var buf bytes.Buffer
		if err := ns.Checkpoint(&buf); err != nil {
			panic(err)
		}
		stepBefore := ns.step

		truncated := bytes.NewReader(buf.Bytes()[:buf.Len()/2])
		if err := ns.Restore(truncated); err == nil {
			t.Errorf("rank %d: truncated checkpoint loaded without error", comm.Rank())
		} else if !strings.Contains(err.Error(), "decoding checkpoint") {
			t.Errorf("rank %d: unexpected truncation error: %v", comm.Rank(), err)
		}
		garbage := bytes.NewReader([]byte("not a checkpoint at all"))
		if err := ns.Restore(garbage); err == nil {
			t.Errorf("rank %d: garbage checkpoint loaded without error", comm.Rank())
		}
		if ns.step != stepBefore {
			t.Errorf("rank %d: failed load mutated solver state", comm.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNSFCheckpointRejectsWrongRank(t *testing.T) {
	// A checkpoint from rank 0 (mode 0) must not load into rank 1's
	// solver (a different Fourier mode).
	saved := make([][]byte, 2)
	_, _, err := simnet.Run(2, aleTestNet(), func(n *simnet.Node) {
		comm := mpi.World(n)
		ns, err := NewNSF(channelMesh(t, 4, 3, 2, 3), nsfChannelCfg(0.1, 2e-3), comm, nil)
		if err != nil {
			panic(err)
		}
		ns.SetUniformInitial(1, 0)
		ns.Step()
		var buf bytes.Buffer
		if err := ns.Checkpoint(&buf); err != nil {
			panic(err)
		}
		saved[n.Rank] = buf.Bytes()
		comm.Barrier()
		other := saved[1-n.Rank]
		if err := ns.Restore(bytes.NewReader(other)); err == nil {
			t.Errorf("rank %d: loaded another rank's checkpoint", comm.Rank())
		} else if !strings.Contains(err.Error(), "Fourier mode") {
			t.Errorf("rank %d: unexpected cross-rank error: %v", comm.Rank(), err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFourierCrashRecoveryBitIdentical is the tentpole acceptance
// criterion: a Nektar-F run killed by an injected node crash and
// restarted from its last checkpoint finishes with fields
// bit-identical to an unfaulted reference run.
// TestALECrashRecoveryBitIdentical runs the moving-mesh solver through
// the same harness: an injected crash mid-run, restart from the last
// committed checkpoint, and a final state byte-identical to the
// unfaulted reference (gob encoding is deterministic).
func TestALECrashRecoveryBitIdentical(t *testing.T) {
	base := ALERecovery{
		Procs: 2,
		Model: aleTestNet(),
		Mesh: func() (*mesh.Mesh, error) {
			m2, err := mesh.WingSection(2, 12, 2)
			if err != nil {
				return nil, err
			}
			return mesh.ExtrudeQuads(m2, 2, 2, 0, 1)
		},
		Cfg: ALEConfig{
			Nu: 0.05, Dt: 2e-3, Order: 2,
			FarfieldVel: [3]float64{1, 0, 0},
			WallVelocity: func(t float64) [3]float64 {
				return [3]float64{0, 0.3 * math.Cos(2*math.Pi*t), 0}
			},
			MoveMesh: true,
		},
		InitVel:         [3]float64{1, 0, 0},
		Steps:           6,
		CheckpointEvery: 2,
		CheckpointCostS: 1e-4,
	}

	ref, err := RunALERecovery(base)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if ref.Attempts != 1 {
		t.Fatalf("reference run took %d attempts", ref.Attempts)
	}

	// Kill rank 1 mid-way through step 4 (3.5/6 of the reference wall):
	// the newest committed checkpoint is step 2, so the rollback
	// recomputes step 3 before passing the crash point.
	faulty := base
	faulty.Plans = []simnet.Injector{
		fault.NewPlan(1).Crash(1, 3.5/6*ref.VirtualWall),
	}
	got, err := RunALERecovery(faulty)
	if err != nil {
		t.Fatalf("recovery run: %v", err)
	}
	if got.Attempts != 2 {
		t.Fatalf("recovery took %d attempts, want 2 (one crash)", got.Attempts)
	}
	if got.StepsComputed <= base.Steps {
		t.Errorf("recovery recomputed nothing (%d steps total); crash too late to matter", got.StepsComputed)
	}
	if len(got.Final) != len(ref.Final) {
		t.Fatalf("final state count %d, want %d", len(got.Final), len(ref.Final))
	}
	for r := range ref.Final {
		if !bytes.Equal(ref.Final[r], got.Final[r]) {
			t.Fatalf("rank %d: final ALE state differs from the unfaulted reference (not bit-identical)", r)
		}
	}
}

func TestFourierCrashRecoveryBitIdentical(t *testing.T) {
	base := FourierRecovery{
		Procs: 2,
		Model: aleTestNet(),
		Mesh: func() (*mesh.Mesh, error) {
			return mesh.RectQuad(4, 3, 2, 0, 3, -1, 1, func(x, y, z float64) string {
				switch {
				case y <= -0.999 || y >= 0.999:
					return "wall"
				case x <= 1e-9:
					return "inflow"
				default:
					return "outflow"
				}
			})
		},
		Cfg:             nsfChannelCfg(0.1, 2e-3),
		InitU:           1,
		Steps:           8,
		CheckpointEvery: 2,
		CheckpointCostS: 1e-4,
	}

	// Reference: fault-free.
	ref, err := RunFourierRecovery(base)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if ref.Attempts != 1 {
		t.Fatalf("reference run took %d attempts", ref.Attempts)
	}

	// Faulted: rank 1's node dies partway through the reference's
	// virtual runtime (0.4 lands between checkpoints, so the rollback
	// recomputes at least one step); the second attempt runs
	// fault-free from the last committed checkpoint.
	faulty := base
	faulty.Plans = []simnet.Injector{
		fault.NewPlan(1).Crash(1, 0.4*ref.VirtualWall),
	}
	got, err := RunFourierRecovery(faulty)
	if err != nil {
		t.Fatalf("recovery run: %v", err)
	}
	if got.Attempts != 2 {
		t.Fatalf("recovery took %d attempts, want 2 (one crash)", got.Attempts)
	}
	if len(got.Crashes) != 1 {
		t.Fatalf("recorded %d crashes, want 1", len(got.Crashes))
	}
	if got.StepsComputed <= base.Steps {
		t.Errorf("recovery recomputed nothing (%d steps total); crash too late to matter", got.StepsComputed)
	}
	if got.VirtualWall <= ref.VirtualWall {
		t.Errorf("recovery wall %v not larger than reference %v", got.VirtualWall, ref.VirtualWall)
	}
	for r := range ref.Fields {
		for c := 0; c < 3; c++ {
			for part := 0; part < 2; part++ {
				a, b := ref.Fields[r][c][part], got.Fields[r][c][part]
				if len(a) != len(b) {
					t.Fatalf("rank %d field size mismatch", r)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("rank %d: U[%d][%d][%d] = %v after recovery, want %v (bit-identical)",
							r, c, part, i, b[i], a[i])
					}
				}
			}
		}
	}
}
