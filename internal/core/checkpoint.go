package core

import (
	"fmt"
	"io"

	"nektar/internal/engine"
)

// Checkpointing: the paper's production runs took 250 hours of CPU
// time per processor, which is only survivable with restart files.
// The serial solver's complete time-stepping state (fields, pressure,
// multistep histories) round-trips through the engine's gob codec; the mesh and
// operators are rebuilt from the same configuration on restart.

// ns2dState is the serialized form of the solver state.
type ns2dState struct {
	Step  int
	U     [2][]float64
	P     []float64
	HistU [][2][][]float64
	HistN [][2][][]float64
}

// Checkpoint writes the solver's time-stepping state to w.
func (ns *NS2D) Checkpoint(w io.Writer) error {
	st := ns2dState{
		Step:  ns.step,
		U:     ns.U,
		P:     ns.P,
		HistU: ns.histU,
		HistN: ns.histN,
	}
	return engine.EncodeState(w, &st)
}

// Restore loads a state written by Checkpoint into a solver built
// with the same mesh and configuration. Time stepping resumes exactly
// where the saved run stopped (bit-identical trajectories).
func (ns *NS2D) Restore(r io.Reader) error {
	var st ns2dState
	if err := engine.DecodeState(r, &st); err != nil {
		return err
	}
	if len(st.U[0]) != ns.AV.NGlobal || len(st.P) != ns.AP.NGlobal {
		return fmt.Errorf("core: checkpoint dof counts (%d, %d) do not match solver (%d, %d)",
			len(st.U[0]), len(st.P), ns.AV.NGlobal, ns.AP.NGlobal)
	}
	for _, lvl := range st.HistU {
		for c := 0; c < 2; c++ {
			if len(lvl[c]) != len(ns.M.Elems) {
				return fmt.Errorf("core: checkpoint history element count mismatch")
			}
		}
	}
	ns.step = st.Step
	ns.U = st.U
	ns.P = st.P
	ns.histU = st.HistU
	ns.histN = st.HistN
	return nil
}

// nsfState is the serialized per-rank state of the Fourier solver.
// Each rank owns one Fourier mode (a pair of real planes), so a
// cluster checkpoint is one stream per rank; K guards against loading
// a stream into the wrong rank after a restart.
type nsfState struct {
	Step  int
	K     int
	U     [3][2][]float64
	P     [2][]float64
	HistU [][3][2][][]float64
	HistN [][3][2][][]float64
}

// Checkpoint writes this rank's time-stepping state to w. Every rank
// must save at the same step for the checkpoint to be consistent.
func (ns *NSF) Checkpoint(w io.Writer) error {
	st := nsfState{
		Step:  ns.step,
		K:     ns.K,
		U:     ns.U,
		P:     ns.P,
		HistU: ns.histU,
		HistN: ns.histN,
	}
	return engine.EncodeState(w, &st)
}

// Restore loads a state written by Checkpoint into a solver built
// with the same mesh, configuration, and rank layout. Time stepping
// resumes bit-identically.
func (ns *NSF) Restore(r io.Reader) error {
	var st nsfState
	if err := engine.DecodeState(r, &st); err != nil {
		return err
	}
	if st.K != ns.K {
		return fmt.Errorf("core: checkpoint holds Fourier mode %d, this rank owns mode %d", st.K, ns.K)
	}
	if len(st.U[0][0]) != ns.AV.NGlobal || len(st.P[0]) != ns.AP.NGlobal {
		return fmt.Errorf("core: checkpoint dof counts (%d, %d) do not match solver (%d, %d)",
			len(st.U[0][0]), len(st.P[0]), ns.AV.NGlobal, ns.AP.NGlobal)
	}
	ns.step = st.Step
	ns.U = st.U
	ns.P = st.P
	ns.histU = st.HistU
	ns.histN = st.HistN
	return nil
}

// aleState is the serialized per-rank state of the ALE solver: the
// local dof values, the multistep histories, the simulation time, and
// (for moving meshes) the vertex coordinates the geometry had reached.
type aleState struct {
	Step  int
	Time  float64
	Rank  int
	Size  int
	U     [3][]float64
	Pr    []float64
	HistU [][3][][]float64
	HistN [][3][][]float64
	Verts [][3]float64
}

// Checkpoint writes this rank's time-stepping state to w. Every rank
// must save at the same step for the checkpoint to be consistent.
func (ns *NSALE) Checkpoint(w io.Writer) error {
	st := aleState{
		Step:  ns.step,
		Time:  ns.time,
		Rank:  ns.Comm.Rank(),
		Size:  ns.Comm.Size(),
		U:     ns.U,
		Pr:    ns.Pr,
		HistU: ns.histU,
		HistN: ns.histN,
		Verts: ns.M.Verts,
	}
	return engine.EncodeState(w, &st)
}

// Restore loads a state written by Checkpoint into a solver built
// with the same mesh, configuration, partition, and communicator
// layout. The mesh geometry is moved back to the checkpointed vertex
// positions and the time-dependent Dirichlet data is recomputed, so
// time stepping resumes bit-identically.
func (ns *NSALE) Restore(r io.Reader) error {
	var st aleState
	if err := engine.DecodeState(r, &st); err != nil {
		return err
	}
	if st.Rank != ns.Comm.Rank() || st.Size != ns.Comm.Size() {
		return fmt.Errorf("core: checkpoint is for rank %d of %d, this solver is rank %d of %d",
			st.Rank, st.Size, ns.Comm.Rank(), ns.Comm.Size())
	}
	if len(st.U[0]) != len(ns.sysV.gdof) || len(st.Pr) != len(ns.sysP.gdof) {
		return fmt.Errorf("core: checkpoint local dof counts (%d, %d) do not match solver (%d, %d)",
			len(st.U[0]), len(st.Pr), len(ns.sysV.gdof), len(ns.sysP.gdof))
	}
	if len(st.Verts) != len(ns.M.Verts) {
		return fmt.Errorf("core: checkpoint has %d mesh vertices, solver mesh has %d",
			len(st.Verts), len(ns.M.Verts))
	}
	if err := ns.M.MoveVertices(st.Verts); err != nil {
		return fmt.Errorf("core: restoring checkpointed mesh geometry: %w", err)
	}
	ns.step = st.Step
	ns.time = st.Time
	ns.U = st.U
	ns.Pr = st.Pr
	ns.histU = st.HistU
	ns.histN = st.HistN
	// Dirichlet data is a function of the restored time; recompute it
	// exactly as the end of the checkpointed step did.
	ns.refreshDirichlet()
	return nil
}
