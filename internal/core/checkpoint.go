package core

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Checkpointing: the paper's production runs took 250 hours of CPU
// time per processor, which is only survivable with restart files.
// The serial solver's complete time-stepping state (fields, pressure,
// multistep histories) round-trips through encoding/gob; the mesh and
// operators are rebuilt from the same configuration on restart.

// ns2dState is the serialized form of the solver state.
type ns2dState struct {
	Step  int
	U     [2][]float64
	P     []float64
	HistU [][2][][]float64
	HistN [][2][][]float64
}

// SaveState writes the solver's time-stepping state to w.
func (ns *NS2D) SaveState(w io.Writer) error {
	st := ns2dState{
		Step:  ns.step,
		U:     ns.U,
		P:     ns.P,
		HistU: ns.histU,
		HistN: ns.histN,
	}
	return gob.NewEncoder(w).Encode(&st)
}

// LoadState restores a state saved by SaveState into a solver built
// with the same mesh and configuration. Time stepping resumes exactly
// where the saved run stopped (bit-identical trajectories).
func (ns *NS2D) LoadState(r io.Reader) error {
	var st ns2dState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	if len(st.U[0]) != ns.AV.NGlobal || len(st.P) != ns.AP.NGlobal {
		return fmt.Errorf("core: checkpoint dof counts (%d, %d) do not match solver (%d, %d)",
			len(st.U[0]), len(st.P), ns.AV.NGlobal, ns.AP.NGlobal)
	}
	for _, lvl := range st.HistU {
		for c := 0; c < 2; c++ {
			if len(lvl[c]) != len(ns.M.Elems) {
				return fmt.Errorf("core: checkpoint history element count mismatch")
			}
		}
	}
	ns.step = st.Step
	ns.U = st.U
	ns.P = st.P
	ns.histU = st.HistU
	ns.histN = st.HistN
	return nil
}
