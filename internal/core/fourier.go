package core

import (
	"fmt"

	"nektar/internal/blas"
	"nektar/internal/fft"
	"nektar/internal/machine"
	"nektar/internal/mesh"
	"nektar/internal/mpi"
	"nektar/internal/solver"
	"nektar/internal/timing"
)

// NSFConfig configures the Fourier-parallel solver Nektar-F: a 2D
// spectral/hp mesh in (x, y) with a homogeneous z direction of length
// Lz expanded in Fourier modes. As in the paper, each MPI rank owns
// one complex Fourier mode — "two spectral/hp element planes" — so a
// P-processor run resolves Nz = 2P physical planes.
type NSFConfig struct {
	Nu    float64
	Dt    float64
	Order int
	Lz    float64

	// VelDirichlet applies to the mean (k = 0) mode; higher modes get
	// homogeneous Dirichlet on the same boundaries. The spanwise (w)
	// component is zero on all Dirichlet boundaries.
	VelDirichlet  map[string]VelBC
	PresDirichlet map[string]bool
}

// ScaleConfig extrapolates a validation-scale run to the paper's
// problem size: per-stage compute-time multipliers and a transpose
// message-size multiplier. The benchmark harness derives the
// multipliers from the element-count ratio (stages whose work is
// proportional to the element count) and from the banded-solve cost
// formulas evaluated at the paper-scale mesh's assembled bandwidth
// (the solve stages). Zero entries mean 1.
type ScaleConfig struct {
	Stage [7]float64
	Comm  float64
}

func (sc *ScaleConfig) stage(i int) float64 {
	if sc == nil || i < 0 || sc.Stage[i] == 0 {
		return 1
	}
	return sc.Stage[i]
}

func (sc *ScaleConfig) comm() float64 {
	if sc == nil || sc.Comm == 0 {
		return 1
	}
	return sc.Comm
}

// NSF is one rank's share of the Nektar-F solver.
type NSF struct {
	M    *mesh.Mesh
	Cfg  NSFConfig
	Comm *mpi.Comm

	// CPUModel, when set, prices every computation section on that
	// machine and advances the simulated clock accordingly; when nil
	// the run is purely logical (validation mode).
	CPUModel *machine.CPU

	K    int     // this rank's Fourier mode
	Beta float64 // wavenumber 2*pi*K/Lz

	// Scale, when non-nil, runs in paper-scale extrapolation mode.
	Scale *ScaleConfig

	AV, AP *mesh.Assembly
	helm   [2]*solver.Condensed
	pois   *solver.Condensed

	// U[c][p] is the global modal field of velocity component c
	// (0=u, 1=v, 2=w), part p (0=real, 1=imag).
	U    [3][2][]float64
	dirU [3][2][]float64
	P    [2][]float64

	histU, histN [][3][2][][]float64 // [level][comp][part][elem][quad]

	fluxEdges []*mesh.EdgeQuad

	// Quadrature-point partitioning for the Alltoall transposes.
	nqTot  int
	eOff   []int // element offsets into the flat quad-point index
	chunk  int   // points per rank (padded)
	rplan  *fft.RealPlan
	step   int
	stages *timing.Stages
	// clk charges simulated wall-clock per stage (cluster runs only),
	// including communication and idle time — the basis of the paper's
	// Figures 13-14 wall-clock breakdowns (stages.Wall).
	clk stageClock

	rec blas.Counts // per-section recording buffer
}

// Stages exposes the per-stage instrumentation (engine.Solver).
func (ns *NSF) Stages() *timing.Stages { return ns.stages }

// NewNSF constructs one rank of the Fourier-parallel solver. All ranks
// must use identical meshes and configuration.
func NewNSF(m *mesh.Mesh, cfg NSFConfig, comm *mpi.Comm, cpu *machine.CPU) (*NSF, error) {
	if cfg.Order < 1 || cfg.Order > 2 {
		return nil, fmt.Errorf("core: time order must be 1 or 2")
	}
	p := comm.Size()
	nz := 2 * p
	if nz&(nz-1) != 0 {
		return nil, fmt.Errorf("core: Nektar-F needs a power-of-two plane count, got %d ranks", p)
	}
	ns := &NSF{
		M: m, Cfg: cfg, Comm: comm, CPUModel: cpu,
		K:      comm.Rank(),
		stages: timing.NewStages(StageNames...),
	}
	ns.clk = newStageClock(ns.stages, comm.Wtime)
	ns.Beta = 2 * 3.141592653589793 * float64(ns.K) / cfg.Lz

	isVelD := func(tag string) bool { _, ok := cfg.VelDirichlet[tag]; return ok }
	isPresD := func(tag string) bool { return cfg.PresDirichlet[tag] }
	ns.AV = mesh.NewAssembly(m, isVelD)
	ns.AP = mesh.NewAssembly(m, isPresD)

	b2 := ns.Beta * ns.Beta
	var err error
	for ord := 1; ord <= cfg.Order; ord++ {
		lambda := b2 + ssGamma[ord-1]/(cfg.Nu*cfg.Dt)
		ns.helm[ord-1], err = solver.NewCondensed(ns.AV, lambda)
		if err != nil {
			return nil, fmt.Errorf("core: viscous operator: %w", err)
		}
	}
	ns.pois, err = solver.NewCondensed(ns.AP, b2)
	if err != nil {
		return nil, fmt.Errorf("core: pressure operator: %w", err)
	}

	for _, be := range m.BndEdges {
		if !isPresD(be.Tag) {
			ns.fluxEdges = append(ns.fluxEdges, mesh.NewEdgeQuad(m, m.Elems[be.Elem], be.LocalEdge, 0))
		}
	}

	// Dirichlet: mean mode carries the physical BCs; higher modes and
	// all imaginary parts are homogeneous.
	for c := 0; c < 3; c++ {
		for part := 0; part < 2; part++ {
			ns.dirU[c][part] = make([]float64, ns.AV.NGlobal)
			ns.U[c][part] = make([]float64, ns.AV.NGlobal)
		}
	}
	if ns.K == 0 {
		for c := 0; c < 2; c++ {
			cc := c
			for _, be := range m.BndEdges {
				bc, ok := cfg.VelDirichlet[be.Tag]
				if !ok {
					continue
				}
				ns.AV.ProjectEdgeTrace(be, func(x, y float64) float64 {
					u, v := bc(x, y)
					if cc == 0 {
						return u
					}
					return v
				}, ns.dirU[c][0])
			}
		}
	}
	ns.P[0] = make([]float64, ns.AP.NGlobal)
	ns.P[1] = make([]float64, ns.AP.NGlobal)

	// Flat quad-point layout for the transposes.
	ns.eOff = make([]int, len(m.Elems)+1)
	for ei, el := range m.Elems {
		ns.eOff[ei+1] = ns.eOff[ei] + el.Ref.NQuad
	}
	ns.nqTot = ns.eOff[len(m.Elems)]
	ns.chunk = (ns.nqTot + p - 1) / p
	ns.rplan, err = fft.NewRealPlan(nz)
	if err != nil {
		return nil, err
	}
	return ns, nil
}

// SetScale enables paper-scale extrapolation: per-stage compute
// multipliers plus the transpose message-size (phantom) factor.
func (ns *NSF) SetScale(sc *ScaleConfig) {
	ns.Scale = sc
	if sc != nil && sc.Comm > 1 {
		ns.Comm.SetPhantomFactor(sc.Comm)
	}
}

// SetUniformInitial sets the mean mode to a constant (u, v, 0) field
// and zeroes all higher modes (impulsive start).
func (ns *NSF) SetUniformInitial(u, v float64) {
	vals := [3]float64{u, v, 0}
	for c := 0; c < 3; c++ {
		for part := 0; part < 2; part++ {
			vec := make([]float64, ns.AV.NGlobal)
			if ns.K == 0 && part == 0 {
				for _, d := range ns.AV.VertDof {
					vec[d] = vals[c]
				}
			}
			copy(vec[ns.AV.NSolve:], ns.dirU[c][part][ns.AV.NSolve:])
			ns.U[c][part] = vec
		}
	}
	ns.histU, ns.histN = nil, nil
	ns.step = 0
}

// PerturbMode adds a small solenoidal-ish disturbance to this rank's
// mode (used to seed three-dimensionality in tests and examples).
func (ns *NSF) PerturbMode(amp float64) {
	if ns.K == 0 {
		return
	}
	for c := 0; c < 3; c++ {
		for i := 0; i < ns.AV.NSolve; i++ {
			ns.U[c][0][i] += amp * float64((i*7+c*3)%13-6) / 13
		}
	}
}

// beginCompute starts pricing a communication-free computation
// section; a no-op in validation mode (CPUModel nil) so that a
// caller-attached timing.Stages recorder sees everything.
func (ns *NSF) beginCompute() {
	if ns.CPUModel == nil {
		return
	}
	ns.rec = blas.Counts{}
	blas.StartRecording(&ns.rec)
}

// endCompute stops recording, advances the simulated clock by the
// priced duration of the section and charges the active stage.
func (ns *NSF) endCompute() {
	if ns.CPUModel == nil {
		return
	}
	blas.StopRecording()
	dt := ns.CPUModel.ApplicationSeconds(&ns.rec) * ns.Scale.stage(ns.stages.Current())
	ns.Comm.Compute(dt)
	ns.stages.AddPriced(&ns.rec, dt)
}

// markStage transitions stage accounting: it charges the simulated
// wall-clock elapsed since the previous mark to the previous stage and
// begins the new one (-1 closes the step).
func (ns *NSF) markStage(i int) { ns.clk.mark(i) }

func (ns *NSF) order() int {
	o := ns.step + 1
	if o > ns.Cfg.Order {
		o = ns.Cfg.Order
	}
	return o
}

// Step advances one time step on every rank collectively.
func (ns *NSF) Step() {
	m := ns.M
	nel := len(m.Elems)
	ord := ns.order()
	alpha, beta := ssAlpha[ord-1], ssBeta[ord-1]
	dt, nu := ns.Cfg.Dt, ns.Cfg.Nu

	// --- Stage 1: modal -> quadrature transforms.
	ns.markStage(0)
	ns.beginCompute()
	coefs := make([][3][2][]float64, nel)
	uq := make([][3][2][]float64, nel)
	for ei, el := range m.Elems {
		for c := 0; c < 3; c++ {
			for part := 0; part < 2; part++ {
				coef := make([]float64, el.Ref.NModes)
				ns.AV.Scatter(ei, ns.U[c][part], coef)
				phys := make([]float64, el.Ref.NQuad)
				el.BwdTrans(coef, phys)
				coefs[ei][c][part] = coef
				uq[ei][c][part] = phys
			}
		}
	}
	ns.endCompute()

	// --- Stage 2: nonlinear terms, pseudo-spectrally in z.
	ns.markStage(1)
	nq2 := ns.nonlinear(coefs, uq)

	// --- Stage 3: weight-averaging.
	ns.markStage(2)
	ns.beginCompute()
	ns.histN = pushHistory3(ns.histN, nq2, ord)
	ns.histU = pushHistory3(ns.histU, uq, ord)
	uhat := make([][3][2][]float64, nel)
	for ei, el := range m.Elems {
		nq := el.Ref.NQuad
		for c := 0; c < 3; c++ {
			for part := 0; part < 2; part++ {
				h := make([]float64, nq)
				for j := 0; j < ord; j++ {
					blas.Daxpy(nq, alpha[j], ns.histU[j][c][part][ei], 1, h, 1)
					blas.Daxpy(nq, dt*beta[j], ns.histN[j][c][part][ei], 1, h, 1)
				}
				uhat[ei][c][part] = h
			}
		}
		_ = el
	}
	ns.endCompute()

	// --- Stage 4: pressure RHS (both parts). The z-divergence term
	// ik w_hat couples the real and imaginary parts.
	ns.markStage(3)
	ns.beginCompute()
	prhs := [2][]float64{make([]float64, ns.AP.NGlobal), make([]float64, ns.AP.NGlobal)}
	for ei, el := range m.Elems {
		n, nq := el.Ref.NModes, el.Ref.NQuad
		tmp := make([]float64, nq)
		dpar := make([]float64, nq)
		for part := 0; part < 2; part++ {
			out := make([]float64, n)
			for c := 0; c < 2; c++ {
				blas.Dvmul(nq, uhat[ei][c][part], 1, el.WJ, 1, tmp, 1)
				for d := 0; d < 2; d++ {
					blas.Dvmul(nq, tmp, 1, el.DxiDx[d][c], 1, dpar, 1)
					el.Ref.IProductDerivAdd(d, 1.0/dt, dpar, out)
				}
			}
			// -(1/dt) * Re/Im(ik w_hat) term: Re = -beta*w_im,
			// Im = +beta*w_re.
			zsgn := -1.0
			other := 1
			if part == 1 {
				zsgn = 1.0
				other = 0
			}
			if ns.Beta != 0 {
				blas.Dvmul(nq, uhat[ei][2][other], 1, el.WJ, 1, tmp, 1)
				iw := make([]float64, n)
				el.Ref.IProductPhys(tmp, iw)
				blas.Daxpy(n, -zsgn*ns.Beta/dt, iw, 1, out, 1)
			}
			ns.AP.Gather(ei, out, prhs[part])
		}
	}
	// Boundary flux on pressure-Neumann edges, trace taken directly
	// from the quadrature values.
	for _, eq := range ns.fluxEdges {
		el := eq.Elem
		q1 := len(eq.Points1D)
		tr := make([]float64, q1)
		for part := 0; part < 2; part++ {
			g := make([]float64, q1)
			for c := 0; c < 2; c++ {
				eq.EvalPhys(uhat[el.ID][c][part], tr)
				nrm := eq.Nx
				if c == 1 {
					nrm = eq.Ny
				}
				blas.Daxpy(q1, nrm, tr, 1, g, 1)
			}
			blas.Dscal(q1, -1/dt, g, 1)
			out := make([]float64, el.Ref.NModes)
			eq.AccumulateFlux(g, out)
			ns.AP.Gather(el.ID, out, prhs[part])
		}
	}
	ns.endCompute()

	// --- Stage 5: pressure solves (real and imaginary share the same
	// factored matrix, the memory saving the paper highlights).
	ns.markStage(4)
	ns.beginCompute()
	for part := 0; part < 2; part++ {
		ns.P[part] = ns.pois.Solve(prhs[part], nil)
	}
	ns.endCompute()

	// --- Stage 6: viscous RHS.
	ns.markStage(5)
	ns.beginCompute()
	var vrhs [3][2][]float64
	for c := 0; c < 3; c++ {
		for part := 0; part < 2; part++ {
			vrhs[c][part] = make([]float64, ns.AV.NGlobal)
		}
	}
	for ei, el := range m.Elems {
		nq := el.Ref.NQuad
		var gradP [2][][]float64 // [part][dim]
		var pq [2][]float64
		pcoef := make([]float64, el.Ref.NModes)
		for part := 0; part < 2; part++ {
			ns.AP.Scatter(ei, ns.P[part], pcoef)
			g := [][]float64{make([]float64, nq), make([]float64, nq)}
			el.PhysGrad(pcoef, g)
			gradP[part] = g
			phys := make([]float64, nq)
			el.BwdTrans(pcoef, phys)
			pq[part] = phys
		}
		out := make([]float64, el.Ref.NModes)
		f := make([]float64, nq)
		for c := 0; c < 3; c++ {
			for part := 0; part < 2; part++ {
				blas.Dcopy(nq, uhat[ei][c][part], 1, f, 1)
				switch {
				case c < 2:
					blas.Daxpy(nq, -dt, gradP[part][c], 1, f, 1)
				default:
					// dp/dz = ik p: Re = -beta p_im, Im = beta p_re.
					if ns.Beta != 0 {
						zsgn := -ns.Beta
						other := 1
						if part == 1 {
							zsgn = ns.Beta
							other = 0
						}
						blas.Daxpy(nq, -dt*zsgn, pq[other], 1, f, 1)
					}
				}
				blas.Dscal(nq, 1/(nu*dt), f, 1)
				el.IProduct(f, out)
				ns.AV.Gather(ei, out, vrhs[c][part])
			}
		}
	}
	ns.endCompute()

	// --- Stage 7: viscous Helmholtz solves (6 per step).
	ns.markStage(6)
	ns.beginCompute()
	for c := 0; c < 3; c++ {
		for part := 0; part < 2; part++ {
			ns.U[c][part] = ns.helm[ord-1].Solve(vrhs[c][part], ns.dirU[c][part])
		}
	}
	ns.endCompute()
	ns.markStage(-1)
	ns.step++
}

// StepCount returns the number of completed time steps.
func (ns *NSF) StepCount() int { return ns.step }

// nonlinear computes N = -(V.grad)V pseudo-spectrally: spectral x-y
// derivatives, ik z-derivatives, a global transpose (MPI_Alltoall), Nz
// 1D FFTs per point, pointwise products, and the reverse path — the
// paper's communication-dominated stage 2.
func (ns *NSF) nonlinear(coefs, uq [][3][2][]float64) [][3][2][]float64 {
	m := ns.M
	p := ns.Comm.Size()
	nz := 2 * p
	nel := len(m.Elems)

	// 12 complex fields: u, v, w, then the 9 gradient components in
	// order d(u,v,w)/dx, /dy, /dz.
	const nf = 12
	ns.beginCompute()
	flat := make([][2][]float64, nf)
	for f := 0; f < nf; f++ {
		flat[f][0] = make([]float64, ns.chunk*p)
		flat[f][1] = make([]float64, ns.chunk*p)
	}
	for ei, el := range m.Elems {
		nq := el.Ref.NQuad
		off := ns.eOff[ei]
		grad := [][]float64{make([]float64, nq), make([]float64, nq)}
		for c := 0; c < 3; c++ {
			for part := 0; part < 2; part++ {
				copy(flat[c][part][off:off+nq], uq[ei][c][part])
			}
			for part := 0; part < 2; part++ {
				el.PhysGrad(coefs[ei][c][part], grad)
				copy(flat[3+c][part][off:off+nq], grad[0]) // d/dx
				copy(flat[6+c][part][off:off+nq], grad[1]) // d/dy
			}
			// d/dz = ik u: Re = -beta u_im, Im = beta u_re.
			zre := flat[9+c][0][off : off+nq]
			zim := flat[9+c][1][off : off+nq]
			if ns.Beta != 0 {
				blas.Daxpy(nq, -ns.Beta, uq[ei][c][1], 1, zre, 1)
				blas.Daxpy(nq, ns.Beta, uq[ei][c][0], 1, zim, 1)
			}
		}
	}
	// Pack per-destination buffers: 24 values per point (12 fields x
	// re/im).
	send := make([][]float64, p)
	for j := 0; j < p; j++ {
		buf := make([]float64, 2*nf*ns.chunk)
		for f := 0; f < nf; f++ {
			copy(buf[(2*f)*ns.chunk:], flat[f][0][j*ns.chunk:(j+1)*ns.chunk])
			copy(buf[(2*f+1)*ns.chunk:], flat[f][1][j*ns.chunk:(j+1)*ns.chunk])
		}
		send[j] = buf
	}
	ns.endCompute()

	// Global exchange: spectral (mode-distributed) -> physical
	// (point-distributed).
	recv := ns.Comm.Alltoall(send, mpi.AlgAuto)

	// Inverse FFTs, products, forward FFTs.
	ns.beginCompute()
	myPts := ns.chunkLen()
	phys := make([][][]float64, nf) // [field][point][z]
	spec := make([]complex128, p+1)
	for f := 0; f < nf; f++ {
		phys[f] = make([][]float64, myPts)
		for q := 0; q < myPts; q++ {
			for mode := 0; mode < p; mode++ {
				buf := recv[mode]
				spec[mode] = complex(buf[(2*f)*ns.chunk+q], buf[(2*f+1)*ns.chunk+q])
			}
			spec[p] = 0 // Nyquist
			z := make([]float64, nz)
			ns.rplan.Inverse(spec, z)
			// Stored coefficients follow the Fourier-series convention
			// (u(z) = sum u_k exp(ik beta z), u_0 = mean), so physical
			// values are Nz times the normalized inverse DFT.
			blas.Dscal(nz, float64(nz), z, 1)
			phys[f][q] = z
		}
	}
	// N_c = -(u * dc/dx + v * dc/dy + w * dc/dz) pointwise in z
	// (BLAS element-wise kernels, so the work is recorded and priced).
	nl := make([][][]float64, 3)
	tmpz := make([]float64, nz)
	for c := 0; c < 3; c++ {
		nl[c] = make([][]float64, myPts)
		for q := 0; q < myPts; q++ {
			out := make([]float64, nz)
			u, v, w := phys[0][q], phys[1][q], phys[2][q]
			cx, cy, cz := phys[3+c][q], phys[6+c][q], phys[9+c][q]
			blas.Dvmul(nz, u, 1, cx, 1, out, 1)
			blas.Dvmul(nz, v, 1, cy, 1, tmpz, 1)
			blas.Daxpy(nz, 1, tmpz, 1, out, 1)
			blas.Dvmul(nz, w, 1, cz, 1, tmpz, 1)
			blas.Daxpy(nz, 1, tmpz, 1, out, 1)
			blas.Dscal(nz, -1, out, 1)
			nl[c][q] = out
		}
	}
	// Forward FFTs and pack the return exchange: 6 values per point
	// (3 components x re/im).
	back := make([][]float64, p)
	for j := 0; j < p; j++ {
		back[j] = make([]float64, 6*ns.chunk)
	}
	outSpec := make([]complex128, p+1)
	for c := 0; c < 3; c++ {
		for q := 0; q < myPts; q++ {
			ns.rplan.Forward(nl[c][q], outSpec)
			scale := 1 / float64(nz) // forward transform normalization
			for mode := 0; mode < p; mode++ {
				back[mode][(2*c)*ns.chunk+q] = real(outSpec[mode]) * scale
				back[mode][(2*c+1)*ns.chunk+q] = imag(outSpec[mode]) * scale
			}
		}
	}
	ns.endCompute()

	// Global exchange back: physical -> spectral.
	got := ns.Comm.Alltoall(back, mpi.AlgAuto)

	ns.beginCompute()
	nq2 := make([][3][2][]float64, nel)
	for ei, el := range m.Elems {
		nq := el.Ref.NQuad
		off := ns.eOff[ei]
		for c := 0; c < 3; c++ {
			for part := 0; part < 2; part++ {
				vals := make([]float64, nq)
				for q := 0; q < nq; q++ {
					gq := off + q
					j := gq / ns.chunk
					lq := gq % ns.chunk
					vals[q] = got[j][(2*c+part)*ns.chunk+lq]
				}
				nq2[ei][c][part] = vals
			}
		}
	}
	ns.endCompute()
	return nq2
}

// chunkLen returns the number of quad points this rank owns in the
// transpose layout.
func (ns *NSF) chunkLen() int {
	lo := ns.K * ns.chunk
	hi := lo + ns.chunk
	if hi > ns.nqTot {
		hi = ns.nqTot
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

func pushHistory3(hist [][3][2][][]float64, newest [][3][2][]float64, depth int) [][3][2][][]float64 {
	var lvl [3][2][][]float64
	for c := 0; c < 3; c++ {
		for part := 0; part < 2; part++ {
			lvl[c][part] = make([][]float64, len(newest))
			for ei := range newest {
				lvl[c][part][ei] = newest[ei][c][part]
			}
		}
	}
	hist = append([][3][2][][]float64{lvl}, hist...)
	if len(hist) > depth {
		hist = hist[:depth]
	}
	return hist
}

// ModeEnergy returns the L2 energy of this rank's Fourier mode
// (integral over the 2D plane of |u_k|^2 summed over components).
func (ns *NSF) ModeEnergy() float64 {
	var e float64
	for ei, el := range ns.M.Elems {
		coef := make([]float64, el.Ref.NModes)
		phys := make([]float64, el.Ref.NQuad)
		for c := 0; c < 3; c++ {
			for part := 0; part < 2; part++ {
				ns.AV.Scatter(ei, ns.U[c][part], coef)
				el.BwdTrans(coef, phys)
				for q := 0; q < el.Ref.NQuad; q++ {
					e += phys[q] * phys[q] * el.WJ[q]
				}
			}
		}
	}
	return e
}

// MeanVelocity returns the k=0 velocity at the quadrature points of
// element ei (only valid on rank 0).
func (ns *NSF) MeanVelocity(ei int) (u, v []float64) {
	el := ns.M.Elems[ei]
	coef := make([]float64, el.Ref.NModes)
	u = make([]float64, el.Ref.NQuad)
	v = make([]float64, el.Ref.NQuad)
	ns.AV.Scatter(ei, ns.U[0][0], coef)
	el.BwdTrans(coef, u)
	ns.AV.Scatter(ei, ns.U[1][0], coef)
	el.BwdTrans(coef, v)
	return u, v
}
