// Package core implements the paper's Nektar solvers: the serial 2D
// incompressible Navier-Stokes solver used for the single-node
// benchmark (Table 1, Figure 12), the Fourier-parallel Nektar-F solver
// (Table 2, Figures 13-14) and the 3D ALE solver Nektar-ALE (Table 3,
// Figures 15-16).
//
// The time discretization is the high-order splitting scheme of
// Karniadakis, Israeli & Orszag (1991): explicit advancement of the
// nonlinear terms, a pressure Poisson solve and an implicit viscous
// Helmholtz solve. Every step is instrumented into the paper's seven
// stages (section 4.1):
//
//  1. transform from modal to quadrature (physical) space
//  2. evaluation of the nonlinear terms in quadrature space
//  3. weight-averaging with previous nonlinear terms
//  4. setup of the pressure Poisson right-hand side
//  5. pressure Poisson solve (banded direct solver)
//  6. setup of the viscous Helmholtz right-hand side
//  7. viscous Helmholtz solves (banded direct solver)
package core

// Stiffly-stable integration coefficients (Karniadakis, Israeli &
// Orszag 1991), indexed by scheme order - 1: u_hat = sum_q alpha_q
// u^{n-q} + dt sum_q beta_q N(u^{n-q}), gamma0 u^{n+1} implicit weight.
var (
	ssGamma = []float64{1, 1.5, 11.0 / 6}
	ssAlpha = [][]float64{
		{1},
		{2, -0.5},
		{3, -1.5, 1.0 / 3},
	}
	ssBeta = [][]float64{
		{1},
		{2, -1},
		{3, -3, 1},
	}
)

// StageNames are the paper's seven time-step regions.
var StageNames = []string{
	"1 modal->quadrature transform",
	"2 nonlinear term evaluation",
	"3 nonlinear weight-averaging",
	"4 pressure RHS setup",
	"5 pressure Poisson solve",
	"6 viscous RHS setup",
	"7 viscous Helmholtz solve",
}
