package core

import (
	"fmt"
	"math"
	"sort"

	"nektar/internal/basis"

	"nektar/internal/blas"
	"nektar/internal/gs"
	"nektar/internal/machine"
	"nektar/internal/mesh"
	"nektar/internal/mpi"
	"nektar/internal/partition"
	"nektar/internal/timing"
)

// ALEStageNames groups the paper's Figure 15/16 breakdown: region "a"
// is everything outside the solves (steps 1-4 and 6, plus the mesh
// update), "b" the pressure solve (step 5) and "c" the Helmholtz
// solves (step 7 plus the extra mesh-velocity solve of the ALE
// formulation).
var ALEStageNames = []string{"a setup+nonlinear+RHS", "b pressure solve", "c Helmholtz solves"}

// ALEConfig configures the fully-3D moving-mesh solver Nektar-ALE.
type ALEConfig struct {
	Nu    float64
	Dt    float64
	Order int

	// FarfieldVel is the free-stream velocity imposed on "farfield"
	// boundaries.
	FarfieldVel [3]float64
	// WallVelocity is the rigid-body velocity of the "wall" (the
	// flapping wing) as a function of time; nil means stationary.
	WallVelocity func(t float64) [3]float64
	// MoveMesh enables the actual ALE mesh motion (vertex update +
	// geometry re-tabulation each step).
	MoveMesh bool

	// Tol is the PCG relative tolerance (default 1e-8).
	Tol float64

	// Scale, when non-nil, runs in paper-scale extrapolation mode.
	Scale *ALEScale
}

// ALEScale extrapolates a validation-scale ALE run to the paper's
// problem size: per-region compute multipliers (indexed like
// ALEStageNames), a GS message-size multiplier, and exact PCG
// iteration counts reflecting the paper-scale condition numbers (the
// solver runs exactly that many iterations — padding with operator
// applications if it converges early, truncating otherwise — so both
// the priced compute and the per-iteration communication match the
// paper-scale solve).
type ALEScale struct {
	Region        [3]float64
	Comm          float64
	PressureIters int
	HelmIters     int
}

func (sc *ALEScale) region(i int) float64 {
	if sc == nil || i < 0 || sc.Region[i] == 0 {
		return 1
	}
	return sc.Region[i]
}

// NSALE is one rank of the Nektar-ALE solver: element-based domain
// decomposition (METIS-style partition), gather-scatter communication
// and diagonally preconditioned conjugate gradient solves.
type NSALE struct {
	M        *mesh.Mesh
	Cfg      ALEConfig
	Comm     *mpi.Comm
	CPUModel *machine.CPU

	AV, AP *mesh.Assembly
	Part   []int // element -> rank
	Own    []int // elements owned by this rank

	sysV, sysP *localSys

	U    [3][]float64 // local velocity dof values (consistent)
	Pr   []float64    // local pressure dof values
	dirU [3][]float64 // Dirichlet velocity values at local dofs (current)

	histU, histN [][3][][]float64 // [level][comp][ownIdx][quad]

	time   float64
	step   int
	stages *timing.Stages
	rec    blas.Counts

	// clk charges simulated wall-clock seconds per region (the basis
	// of Figures 15-16 wall-clock breakdowns; stages.Wall).
	clk stageClock

	// Iters accumulates PCG iteration counts of the last step.
	ItersPressure, ItersViscous int
}

// localSys is the per-rank view of a global assembly: the local dofs
// touched by owned elements, the gather-scatter plan over them, and a
// matrix-free operator.
type localSys struct {
	a    *mesh.Assembly
	own  []int
	gdof []int       // local -> global dof
	g2l  map[int]int // global -> local
	l2l  [][]int     // per owned element: mode -> local dof
	sgn  [][]float64
	gs   *gs.GS
	unk  []bool // local dof is an unknown (not Dirichlet)

	mats [][]float64 // per owned element: current Helmholtz matrix
	diag []float64   // inverse diagonal over unknowns

	// price, when set, is called with the BLAS counts of every local
	// computation section (between communications) so the simulated
	// clock advances; nil in validation mode, where the caller owns
	// the global recorder instead.
	price func(*blas.Counts)
	// priceBuilds controls whether operator (re)builds are priced: the
	// paper's production code applies operators matrix-free and never
	// assembles elemental matrices, so the extrapolation mode treats
	// builds as free and prices only the per-iteration applies.
	priceBuilds bool
}

// recorded runs f, and in priced mode records its BLAS work and feeds
// it to the price hook. Sections passed here must not communicate.
func (s *localSys) recorded(f func()) {
	if s.price == nil {
		f()
		return
	}
	var c blas.Counts
	blas.StartRecording(&c)
	f()
	blas.StopRecording()
	s.price(&c)
}

func newLocalSys(a *mesh.Assembly, own []int, comm *mpi.Comm) *localSys {
	s := &localSys{a: a, own: own, g2l: map[int]int{}}
	set := map[int]bool{}
	for _, ei := range own {
		for _, g := range a.L2G[ei] {
			set[g] = true
		}
	}
	for g := range set {
		s.gdof = append(s.gdof, g)
	}
	sort.Ints(s.gdof)
	for l, g := range s.gdof {
		s.g2l[g] = l
	}
	s.l2l = make([][]int, len(own))
	s.sgn = make([][]float64, len(own))
	for oi, ei := range own {
		l2g := a.L2G[ei]
		loc := make([]int, len(l2g))
		for mi, g := range l2g {
			loc[mi] = s.g2l[g]
		}
		s.l2l[oi] = loc
		s.sgn[oi] = a.Sign[ei]
	}
	s.unk = make([]bool, len(s.gdof))
	for l, g := range s.gdof {
		s.unk[l] = g < a.NSolve
	}
	// Hexahedral cross-point dofs are shared by at most 8 ranks, so a
	// pairwise limit of 8 routes every dof through batched neighbor
	// exchanges (the Tufo-Fischer pairwise strategy); the tree stage
	// is reserved for genuinely global values.
	s.gs = gs.New(comm, s.gdof, 8)
	return s
}

// buildOperators computes the elemental Helmholtz matrices and the
// diagonal preconditioner for the current geometry.
func (s *localSys) buildOperators(m *mesh.Mesh, lambda float64) {
	if s.mats == nil {
		s.mats = make([][]float64, len(s.own))
	}
	diag := make([]float64, len(s.gdof))
	rec := s.recorded
	if !s.priceBuilds {
		rec = func(f func()) { f() }
	}
	rec(func() {
		for oi, ei := range s.own {
			el := m.Elems[ei]
			h := el.Helmholtz(lambda)
			s.mats[oi] = h
			n := el.Ref.NModes
			for mi := 0; mi < n; mi++ {
				diag[s.l2l[oi][mi]] += h[mi*n+mi]
			}
		}
	})
	s.gs.Combine(diag, gs.Sum)
	s.diag = make([]float64, len(diag))
	for i, d := range diag {
		if s.unk[i] && d != 0 {
			s.diag[i] = 1 / d
		}
	}
}

// apply computes y = H x over local dofs (consistent output).
func (s *localSys) apply(m *mesh.Mesh, x, y []float64) {
	for i := range y {
		y[i] = 0
	}
	s.recorded(func() {
		for oi, ei := range s.own {
			el := m.Elems[ei]
			n := el.Ref.NModes
			xl := make([]float64, n)
			yl := make([]float64, n)
			loc, sg := s.l2l[oi], s.sgn[oi]
			for mi := 0; mi < n; mi++ {
				xl[mi] = sg[mi] * x[loc[mi]]
			}
			blas.Dgemv(blas.NoTrans, n, n, 1, s.mats[oi], n, xl, 1, 0, yl, 1)
			for mi := 0; mi < n; mi++ {
				y[loc[mi]] += sg[mi] * yl[mi]
			}
		}
	})
	s.gs.Combine(y, gs.Sum)
}

// pcg solves H x = b over the unknowns with Dirichlet values taken
// from x's non-unknown entries; returns iterations. minIter forces
// that many iterations even after convergence (the extrapolation mode
// uses it to reproduce paper-scale iteration counts; converged extra
// iterations apply the operator for timing but freeze the solution).
func (s *localSys) pcg(m *mesh.Mesh, x, b []float64, tol float64, minIter, maxIter int) (int, error) {
	n := len(s.gdof)
	r := make([]float64, n)
	s.apply(m, x, r) // includes Dirichlet columns
	for i := 0; i < n; i++ {
		if s.unk[i] {
			r[i] = b[i] - r[i]
		} else {
			r[i] = 0
		}
	}
	z := make([]float64, n)
	p := make([]float64, n)
	hp := make([]float64, n)
	for i := range z {
		z[i] = r[i] * s.diag[i]
	}
	copy(p, z)
	rz := s.gs.Dot(r, z)
	rz0 := rz
	if rz0 <= 0 {
		return 0, nil
	}
	// Convergence is measured in the preconditioned norm sqrt(rz),
	// saving one global reduction per iteration relative to ||r||.
	iters := 0
	for it := 0; it < maxIter; it++ {
		converged := rz <= tol*tol*rz0
		if converged && it >= minIter {
			break
		}
		if converged {
			// Paper-scale iteration padding: exercise the operator and
			// the reductions without perturbing the solution.
			s.apply(m, p, hp)
			s.gs.Dot(p, hp)
			iters = it + 1
			continue
		}
		s.apply(m, p, hp)
		for i := range hp {
			if !s.unk[i] {
				hp[i] = 0
			}
		}
		php := s.gs.Dot(p, hp)
		if php <= 0 {
			return iters, fmt.Errorf("core: ALE PCG operator not SPD (pHp=%g)", php)
		}
		alpha := rz / php
		for i := range x {
			if s.unk[i] {
				x[i] += alpha * p[i]
				r[i] -= alpha * hp[i]
			}
		}
		for i := range z {
			z[i] = r[i] * s.diag[i]
		}
		rzNew := s.gs.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		iters = it + 1
	}
	return iters, nil
}

// NewNSALE builds one rank of the ALE solver. Every rank holds the
// full mesh (for deterministic partitioning and mesh motion) but only
// assembles and solves on its own elements.
func NewNSALE(m *mesh.Mesh, cfg ALEConfig, comm *mpi.Comm, cpu *machine.CPU) (*NSALE, error) {
	if m.Dim != 3 {
		return nil, fmt.Errorf("core: Nektar-ALE needs a 3D mesh")
	}
	if cfg.Order < 1 || cfg.Order > 2 {
		return nil, fmt.Errorf("core: time order must be 1 or 2")
	}
	if cfg.Tol == 0 {
		cfg.Tol = 1e-8
	}
	ns := &NSALE{
		M: m, Cfg: cfg, Comm: comm, CPUModel: cpu,
		stages: timing.NewStages(ALEStageNames...),
	}
	ns.clk = newStageClock(ns.stages, comm.Wtime)
	isVelD := func(tag string) bool { return tag == "wall" || tag == "farfield" }
	isPresD := func(tag string) bool { return tag == "farfield" }
	ns.AV = mesh.NewAssembly(m, isVelD)
	ns.AP = mesh.NewAssembly(m, isPresD)

	g := partition.FromMesh(m)
	part, err := partition.Partition(g, comm.Size())
	if err != nil {
		return nil, err
	}
	ns.Part = part
	for ei, p := range part {
		if p == comm.Rank() {
			ns.Own = append(ns.Own, ei)
		}
	}
	ns.sysV = newLocalSys(ns.AV, ns.Own, comm)
	ns.sysP = newLocalSys(ns.AP, ns.Own, comm)
	if cfg.Scale != nil && cfg.Scale.Comm > 1 {
		comm.SetPhantomFactor(cfg.Scale.Comm)
	}
	if cpu != nil {
		price := func(c *blas.Counts) {
			dt := cpu.ApplicationSeconds(c) * ns.Cfg.Scale.region(ns.stages.Current())
			comm.Compute(dt)
			ns.stages.AddPriced(c, dt)
		}
		ns.sysV.price = price
		ns.sysP.price = price
		ns.sysV.priceBuilds = cfg.Scale == nil
		ns.sysP.priceBuilds = cfg.Scale == nil
	}

	nl := len(ns.sysV.gdof)
	for c := 0; c < 3; c++ {
		ns.U[c] = make([]float64, nl)
		ns.dirU[c] = make([]float64, nl)
	}
	ns.Pr = make([]float64, len(ns.sysP.gdof))
	ns.refreshDirichlet()
	return ns, nil
}

// refreshDirichlet recomputes the velocity Dirichlet values for the
// current time (the wall moves). Constant values per boundary region
// live on vertex dofs only — exact for rigid motion.
func (ns *NSALE) refreshDirichlet() {
	wall := [3]float64{}
	if ns.Cfg.WallVelocity != nil {
		wall = ns.Cfg.WallVelocity(ns.time)
	}
	// Zero all Dirichlet entries first.
	for c := 0; c < 3; c++ {
		for l, g := range ns.sysV.gdof {
			if g >= ns.AV.NSolve {
				ns.dirU[c][l] = 0
			}
		}
	}
	setVert := func(v int, vals [3]float64) {
		g := ns.AV.VertDof[v]
		if l, ok := ns.sysV.g2l[g]; ok && g >= ns.AV.NSolve {
			for c := 0; c < 3; c++ {
				ns.dirU[c][l] = vals[c]
			}
		}
	}
	for _, bf := range ns.M.BndFaces {
		var vals [3]float64
		switch bf.Tag {
		case "wall":
			vals = wall
		case "farfield":
			vals = ns.Cfg.FarfieldVel
		default:
			continue
		}
		el := ns.M.Elems[bf.Elem]
		for _, lv := range faceVerts(bf.LocalFace) {
			setVert(el.Vert[lv], vals)
		}
	}
	// Apply onto the state.
	for c := 0; c < 3; c++ {
		for l, g := range ns.sysV.gdof {
			if g >= ns.AV.NSolve {
				ns.U[c][l] = ns.dirU[c][l]
			}
		}
	}
}

// faceVerts returns the corner local vertex ids of a hex face.
func faceVerts(lf int) [4]int {
	return basis.HexFaceVerts[lf]
}

// SetUniformInitial sets a constant initial velocity.
func (ns *NSALE) SetUniformInitial(u, v, w float64) {
	vals := [3]float64{u, v, w}
	for c := 0; c < 3; c++ {
		for i := range ns.U[c] {
			ns.U[c][i] = 0
		}
		for vtx := range ns.M.Verts {
			g := ns.AV.VertDof[vtx]
			if l, ok := ns.sysV.g2l[g]; ok {
				ns.U[c][l] = vals[c]
			}
		}
		for l, g := range ns.sysV.gdof {
			if g >= ns.AV.NSolve {
				ns.U[c][l] = ns.dirU[c][l]
			}
		}
	}
	ns.histU, ns.histN = nil, nil
	ns.step = 0
}

// beginCompute/endCompute bracket a communication-free computation
// section. In priced (cluster-simulated) mode the section's BLAS work
// is recorded and converted to simulated CPU time; in validation mode
// they are no-ops so that a caller-attached timing.Stages recorder
// sees everything.
func (ns *NSALE) beginCompute() {
	if ns.CPUModel == nil {
		return
	}
	ns.rec = blas.Counts{}
	blas.StartRecording(&ns.rec)
}

func (ns *NSALE) endCompute() {
	if ns.CPUModel == nil {
		return
	}
	blas.StopRecording()
	dt := ns.CPUModel.ApplicationSeconds(&ns.rec) * ns.Cfg.Scale.region(ns.stages.Current())
	ns.Comm.Compute(dt)
	ns.stages.AddPriced(&ns.rec, dt)
}

// Stages exposes the per-region instrumentation (engine.Solver).
func (ns *NSALE) Stages() *timing.Stages { return ns.stages }

// markStage transitions region accounting, charging elapsed simulated
// wall time to the previous region (-1 closes the step).
func (ns *NSALE) markStage(i int) { ns.clk.mark(i) }

func (ns *NSALE) order() int {
	o := ns.step + 1
	if o > ns.Cfg.Order {
		o = ns.Cfg.Order
	}
	return o
}

// Step advances one time step: mesh velocity solve, ALE nonlinear
// terms, mesh motion, pressure and viscous PCG solves.
func (ns *NSALE) Step() {
	m := ns.M
	ord := ns.order()
	gamma := ssGamma[ord-1]
	alpha, beta := ssAlpha[ord-1], ssBeta[ord-1]
	dt, nu := ns.Cfg.Dt, ns.Cfg.Nu
	ns.ItersPressure, ns.ItersViscous = 0, 0

	// ---- Region c (part 1): mesh velocity Helmholtz solve (the ALE
	// extra solve). Solved for the *current* wall motion.
	ns.markStage(2)
	meshVel := ns.solveMeshVelocity()

	// ---- Region a: transforms, nonlinear terms, averaging, RHS setup
	// and (if enabled) the mesh update.
	ns.markStage(0)
	// Build the operators for the current geometry (communicates in
	// the diagonal assembly, so it stays outside the priced sections;
	// its local work is priced through the localSys hook).
	lambdaV := gamma / (nu * dt)
	ns.sysV.buildOperators(m, lambdaV)
	ns.sysP.buildOperators(m, 0)

	ns.beginCompute()
	// Stage 1+2: transforms and ALE nonlinear terms
	// N = -((V - w_mesh) . grad) V at quadrature points of owned
	// elements.
	nOwn := len(ns.Own)
	uq := make([][3][]float64, nOwn)
	nq2 := make([][3][]float64, nOwn)
	for oi, ei := range ns.Own {
		el := m.Elems[ei]
		nq := el.Ref.NQuad
		var coefs [3][]float64
		for c := 0; c < 3; c++ {
			coef := make([]float64, el.Ref.NModes)
			ns.scatterLocal(ns.sysV, oi, ns.U[c], coef)
			phys := make([]float64, nq)
			el.BwdTrans(coef, phys)
			coefs[c] = coef
			uq[oi][c] = phys
		}
		var wq [3][]float64
		for c := 0; c < 3; c++ {
			coef := make([]float64, el.Ref.NModes)
			ns.scatterLocal(ns.sysV, oi, meshVel[c], coef)
			phys := make([]float64, nq)
			el.BwdTrans(coef, phys)
			wq[c] = phys
		}
		grad := [][]float64{make([]float64, nq), make([]float64, nq), make([]float64, nq)}
		for c := 0; c < 3; c++ {
			el.PhysGrad(coefs[c], grad)
			nl := make([]float64, nq)
			for q := 0; q < nq; q++ {
				nl[q] = -((uq[oi][0][q]-wq[0][q])*grad[0][q] +
					(uq[oi][1][q]-wq[1][q])*grad[1][q] +
					(uq[oi][2][q]-wq[2][q])*grad[2][q])
			}
			nq2[oi][c] = nl
		}
	}

	// Stage 3: weight-averaging.
	ns.histN = pushHistoryALE(ns.histN, nq2, ord)
	ns.histU = pushHistoryALE(ns.histU, uq, ord)
	uhat := make([][3][]float64, nOwn)
	for oi, ei := range ns.Own {
		el := m.Elems[ei]
		nq := el.Ref.NQuad
		for c := 0; c < 3; c++ {
			h := make([]float64, nq)
			for j := 0; j < ord; j++ {
				blas.Daxpy(nq, alpha[j], ns.histU[j][c][oi], 1, h, 1)
				blas.Daxpy(nq, dt*beta[j], ns.histN[j][c][oi], 1, h, 1)
			}
			uhat[oi][c] = h
		}
		_ = el
	}

	// Stage 4: pressure RHS (weak divergence of u_hat; natural
	// pressure boundaries absorb the flux term since the farfield is
	// pressure-Dirichlet and wall fluxes are near zero for no-slip).
	prhs := make([]float64, len(ns.sysP.gdof))
	for oi, ei := range ns.Own {
		el := m.Elems[ei]
		n, nq := el.Ref.NModes, el.Ref.NQuad
		out := make([]float64, n)
		tmp := make([]float64, nq)
		dpar := make([]float64, nq)
		for c := 0; c < 3; c++ {
			blas.Dvmul(nq, uhat[oi][c], 1, el.WJ, 1, tmp, 1)
			for d := 0; d < 3; d++ {
				blas.Dvmul(nq, tmp, 1, el.DxiDx[d][c], 1, dpar, 1)
				el.Ref.IProductDerivAdd(d, 1.0/dt, dpar, out)
			}
		}
		ns.gatherLocal(ns.sysP, oi, out, prhs)
	}
	ns.endCompute()
	ns.sysP.gs.Combine(prhs, gs.Sum)

	// ---- Region b: pressure PCG solve.
	ns.markStage(1)
	for i := range ns.Pr {
		if !ns.sysP.unk[i] {
			ns.Pr[i] = 0
		}
	}
	minIt, maxIt := iterBounds(ns.pressureIters(), len(ns.sysP.gdof))
	it, err := ns.sysP.pcg(m, ns.Pr, prhs, ns.Cfg.Tol, minIt, maxIt)
	if err != nil {
		panic(err)
	}
	ns.ItersPressure = it

	// ---- Region a (continued): viscous RHS.
	ns.markStage(0)
	ns.beginCompute()
	vrhs := [3][]float64{}
	for c := 0; c < 3; c++ {
		vrhs[c] = make([]float64, len(ns.sysV.gdof))
	}
	for oi, ei := range ns.Own {
		el := m.Elems[ei]
		nq := el.Ref.NQuad
		pcoef := make([]float64, el.Ref.NModes)
		ns.scatterLocal(ns.sysP, oi, ns.Pr, pcoef)
		gradP := [][]float64{make([]float64, nq), make([]float64, nq), make([]float64, nq)}
		el.PhysGrad(pcoef, gradP)
		out := make([]float64, el.Ref.NModes)
		f := make([]float64, nq)
		for c := 0; c < 3; c++ {
			blas.Dcopy(nq, uhat[oi][c], 1, f, 1)
			blas.Daxpy(nq, -dt, gradP[c], 1, f, 1)
			blas.Dscal(nq, 1/(nu*dt), f, 1)
			el.IProduct(f, out)
			ns.gatherLocal(ns.sysV, oi, out, vrhs[c])
		}
	}
	ns.endCompute()
	for c := 0; c < 3; c++ {
		ns.sysV.gs.Combine(vrhs[c], gs.Sum)
	}

	// Mesh update (region a per the paper: "a term is added in the
	// non-linear step, associated with the updating of the positions
	// of the vertices of each element"). moveMesh communicates
	// (Allreduce of vertex velocities), so it sits between priced
	// sections; the geometry re-tabulation is not BLAS work and is
	// charged via the operator rebuild that follows.
	if ns.Cfg.MoveMesh {
		ns.moveMesh(meshVel, dt)
	}

	// ---- Region c: viscous Helmholtz PCG solves.
	ns.markStage(2)
	ns.time += dt
	ns.refreshDirichlet()
	if ns.Cfg.MoveMesh {
		// Geometry changed: rebuild the viscous operator before the
		// solve (the matrices must match the new mesh).
		ns.sysV.buildOperators(m, lambdaV)
	}
	for c := 0; c < 3; c++ {
		x := ns.U[c]
		for l, g := range ns.sysV.gdof {
			if g >= ns.AV.NSolve {
				x[l] = ns.dirU[c][l]
			}
		}
		minIt, maxIt := iterBounds(ns.helmIters(), len(ns.sysV.gdof))
		it, err := ns.sysV.pcg(m, x, vrhs[c], ns.Cfg.Tol, minIt, maxIt)
		if err != nil {
			panic(err)
		}
		ns.ItersViscous += it
	}
	ns.markStage(-1)
	ns.step++
}

// MeanInterfaceDofs returns the mean per-neighbor interface size of
// this rank's velocity system (see gs.MeanPairwiseLen).
func (ns *NSALE) MeanInterfaceDofs() float64 {
	return ns.sysV.gs.MeanPairwiseLen()
}

// pressureIters / helmIters return the exact iteration counts of the
// extrapolation mode (0 = run to convergence).
func (ns *NSALE) pressureIters() int {
	if ns.Cfg.Scale == nil {
		return 0
	}
	return ns.Cfg.Scale.PressureIters
}

func (ns *NSALE) helmIters() int {
	if ns.Cfg.Scale == nil {
		return 0
	}
	return ns.Cfg.Scale.HelmIters
}

// iterBounds converts an exact target into pcg (min, max) bounds.
func iterBounds(exact, n int) (int, int) {
	if exact > 0 {
		return exact, exact
	}
	return 0, 50 * n
}

// solveMeshVelocity computes the harmonic extension of the wall
// velocity into the domain (zero at the farfield, natural on the z
// boundaries): three Laplace PCG solves on the velocity system.
func (ns *NSALE) solveMeshVelocity() [3][]float64 {
	var w [3][]float64
	nl := len(ns.sysV.gdof)
	wall := [3]float64{}
	if ns.Cfg.WallVelocity != nil {
		wall = ns.Cfg.WallVelocity(ns.time)
	}
	moving := wall != [3]float64{}
	for c := 0; c < 3; c++ {
		w[c] = make([]float64, nl)
	}
	if !moving {
		return w
	}
	// Laplace operator (lambda tiny to keep SPD even if a rank's
	// subdomain misses Dirichlet dofs).
	ns.sysV.buildOperators(ns.M, 1e-10)
	// Dirichlet: wall velocity on wall vertices, zero elsewhere.
	dir := make([]float64, nl)
	for c := 0; c < 3; c++ {
		for i := range dir {
			dir[i] = 0
		}
		for _, bf := range ns.M.BndFaces {
			if bf.Tag != "wall" {
				continue
			}
			el := ns.M.Elems[bf.Elem]
			for _, lv := range faceVerts(bf.LocalFace) {
				g := ns.AV.VertDof[el.Vert[lv]]
				if l, ok := ns.sysV.g2l[g]; ok {
					dir[l] = wall[c]
				}
			}
		}
		x := w[c]
		for l, g := range ns.sysV.gdof {
			if g >= ns.AV.NSolve {
				x[l] = dir[l]
			}
		}
		rhs := make([]float64, nl)
		minIt, maxIt := iterBounds(ns.helmIters(), nl)
		it, err := ns.sysV.pcg(ns.M, x, rhs, ns.Cfg.Tol, minIt, maxIt)
		if err != nil {
			panic(err)
		}
		ns.ItersViscous += it
	}
	return w
}

// moveMesh displaces the vertices by dt * mesh velocity and
// re-tabulates the geometry. All ranks compute the same motion from
// the globally consistent mesh-velocity field.
func (ns *NSALE) moveMesh(w [3][]float64, dt float64) {
	nv := len(ns.M.Verts)
	// Assemble global vertex velocities: each rank contributes
	// value/multiplicity for vertices it holds; the Allreduce yields
	// the consistent value everywhere.
	contrib := make([]float64, 3*nv)
	for v := 0; v < nv; v++ {
		g := ns.AV.VertDof[v]
		if l, ok := ns.sysV.g2l[g]; ok {
			for c := 0; c < 3; c++ {
				contrib[3*v+c] = w[c][l] / ns.sysV.gs.Mult[l]
			}
		}
	}
	var vel []float64
	if ns.Comm.Size() > 1 {
		vel = ns.Comm.Allreduce(contrib, mpi.Sum)
	} else {
		vel = contrib
	}
	verts := make([][3]float64, nv)
	for v := 0; v < nv; v++ {
		for c := 0; c < 3; c++ {
			verts[v][c] = ns.M.Verts[v][c] + dt*vel[3*v+c]
		}
	}
	if err := ns.M.MoveVertices(verts); err != nil {
		panic(fmt.Sprintf("core: ALE mesh motion inverted an element: %v", err))
	}
}

// scatterLocal extracts element-local coefficients from a local dof
// vector.
func (ns *NSALE) scatterLocal(s *localSys, oi int, x, coef []float64) {
	loc, sg := s.l2l[oi], s.sgn[oi]
	for mi := range coef {
		coef[mi] = sg[mi] * x[loc[mi]]
	}
}

// gatherLocal accumulates element-local values into a local dof
// vector.
func (ns *NSALE) gatherLocal(s *localSys, oi int, coef, x []float64) {
	loc, sg := s.l2l[oi], s.sgn[oi]
	for mi := range coef {
		x[loc[mi]] += sg[mi] * coef[mi]
	}
}

func pushHistoryALE(hist [][3][][]float64, newest [][3][]float64, depth int) [][3][][]float64 {
	var lvl [3][][]float64
	for c := 0; c < 3; c++ {
		lvl[c] = make([][]float64, len(newest))
		for oi := range newest {
			lvl[c][oi] = newest[oi][c]
		}
	}
	hist = append([][3][][]float64{lvl}, hist...)
	if len(hist) > depth {
		hist = hist[:depth]
	}
	return hist
}

// KineticEnergy returns the global kinetic energy (collective call).
func (ns *NSALE) KineticEnergy() float64 {
	var ke float64
	for oi, ei := range ns.Own {
		el := ns.M.Elems[ei]
		nq := el.Ref.NQuad
		coef := make([]float64, el.Ref.NModes)
		phys := make([]float64, nq)
		for c := 0; c < 3; c++ {
			ns.scatterLocal(ns.sysV, oi, ns.U[c], coef)
			el.BwdTrans(coef, phys)
			for q := 0; q < nq; q++ {
				ke += 0.5 * phys[q] * phys[q] * el.WJ[q]
			}
		}
	}
	if ns.Comm.Size() > 1 {
		ke = ns.Comm.Allreduce([]float64{ke}, mpi.Sum)[0]
	}
	return ke
}

// L2VelocityError computes the global L2 error against an exact
// velocity field (collective call).
func (ns *NSALE) L2VelocityError(exact func(x, y, z float64) [3]float64) float64 {
	var sum float64
	for oi, ei := range ns.Own {
		el := ns.M.Elems[ei]
		nq := el.Ref.NQuad
		coef := make([]float64, el.Ref.NModes)
		var phys [3][]float64
		for c := 0; c < 3; c++ {
			phys[c] = make([]float64, nq)
			ns.scatterLocal(ns.sysV, oi, ns.U[c], coef)
			el.BwdTrans(coef, phys[c])
		}
		for q := 0; q < nq; q++ {
			ex := exact(el.X[0][q], el.X[1][q], el.X[2][q])
			for c := 0; c < 3; c++ {
				d := phys[c][q] - ex[c]
				sum += d * d * el.WJ[q]
			}
		}
	}
	if ns.Comm.Size() > 1 {
		sum = ns.Comm.Allreduce([]float64{sum}, mpi.Sum)[0]
	}
	return math.Sqrt(sum)
}

// Forces integrates the fluid traction over the "wall" (wing) faces
// owned by this rank and reduces globally, returning the force vector
// F = surface integral of (-p n + nu (grad u + grad u^T) n) dS with n
// the body-outward normal (collective call).
func (ns *NSALE) Forces() [3]float64 {
	nu := ns.Cfg.Nu
	var f [3]float64
	ownSet := map[int]int{}
	for oi, ei := range ns.Own {
		ownSet[ei] = oi
	}
	for _, bf := range ns.M.BndFaces {
		if bf.Tag != "wall" {
			continue
		}
		oi, mine := ownSet[bf.Elem]
		if !mine {
			continue
		}
		el := ns.M.Elems[bf.Elem]
		fq := mesh.NewFaceQuad(ns.M, el, bf.LocalFace)
		nq := el.Ref.NQuad

		// Pressure and velocity gradients at the element quad points.
		pcoef := make([]float64, el.Ref.NModes)
		ns.scatterLocal(ns.sysP, oi, ns.Pr, pcoef)
		pq := make([]float64, nq)
		el.BwdTrans(pcoef, pq)
		var grad [3][3][]float64 // [component][direction]
		coef := make([]float64, el.Ref.NModes)
		for c := 0; c < 3; c++ {
			g := [][]float64{make([]float64, nq), make([]float64, nq), make([]float64, nq)}
			ns.scatterLocal(ns.sysV, oi, ns.U[c], coef)
			el.PhysGrad(coef, g)
			for d := 0; d < 3; d++ {
				grad[c][d] = g[d]
			}
		}
		np := len(fq.Src)
		tr := make([][3]float64, np)
		for i, sq := range fq.Src {
			// Body-outward normal is the negation of the fluid-domain
			// outward normal tabulated on the face.
			n := [3]float64{-fq.Nx[i], -fq.Ny[i], -fq.Nz[i]}
			for c := 0; c < 3; c++ {
				tr[i][c] = -pq[sq] * n[c]
				for d := 0; d < 3; d++ {
					tr[i][c] += nu * (grad[c][d][sq] + grad[d][c][sq]) * n[d]
				}
			}
		}
		comp := make([]float64, np)
		for c := 0; c < 3; c++ {
			for i := range tr {
				comp[i] = tr[i][c]
			}
			f[c] += fq.Integrate(comp)
		}
	}
	if ns.Comm.Size() > 1 {
		red := ns.Comm.Allreduce(f[:], mpi.Sum)
		copy(f[:], red)
	}
	return f
}

// StepCount returns completed steps; Time the current simulation time.
func (ns *NSALE) StepCount() int { return ns.step }

// Time returns the current simulation time.
func (ns *NSALE) Time() float64 { return ns.time }
