package core

import (
	"math"
	"testing"

	"nektar/internal/mesh"
	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

// wingMesh builds a small extruded NACA-section mesh (the paper's
// flapping-wing geometry at validation scale).
func wingMesh(t *testing.T, order, nt, nr, nz int) *mesh.Mesh {
	t.Helper()
	m2, err := mesh.WingSection(order, nt, nr)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := mesh.ExtrudeQuads(m2, order, nz, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m3
}

// boxMesh builds a box with farfield boundaries all around.
func boxMesh(t *testing.T, order, n int) *mesh.Mesh {
	t.Helper()
	m, err := mesh.BoxHex(order, n, n, n, 0, 1, 0, 1, 0, 1,
		func(x, y, z float64) string { return "farfield" })
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func aleTestNet() *simnet.Model {
	return &simnet.Model{
		Name:  "test",
		Inter: simnet.LinkModel{LatencyUS: 10, BandwidthMBs: 100, OverheadUS: 1, EagerLimit: 32 << 10},
	}
}

func TestALEUniformFreestreamPreserved(t *testing.T) {
	// A uniform velocity with matching farfield Dirichlet is an exact
	// steady solution; the solver must hold it to solver tolerance.
	m := boxMesh(t, 3, 2)
	cfg := ALEConfig{
		Nu: 0.05, Dt: 1e-2, Order: 2,
		FarfieldVel: [3]float64{1, 0.3, -0.2},
	}
	_, _, err := simnet.Run(1, aleTestNet(), func(n *simnet.Node) {
		ns, err := NewNSALE(m, cfg, mpi.World(n), nil)
		if err != nil {
			panic(err)
		}
		ns.SetUniformInitial(1, 0.3, -0.2)
		for i := 0; i < 5; i++ {
			ns.Step()
		}
		e := ns.L2VelocityError(func(x, y, z float64) [3]float64 {
			return [3]float64{1, 0.3, -0.2}
		})
		if e > 1e-6 {
			t.Errorf("uniform flow drifted: L2 error %g", e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestALEParallelMatchesSerial(t *testing.T) {
	// The domain-decomposed run must reproduce the single-rank fields:
	// ties the partition + gather-scatter + parallel PCG chain to the
	// serial path.
	cfg := ALEConfig{
		Nu: 0.1, Dt: 5e-3, Order: 2,
		FarfieldVel: [3]float64{1, 0, 0},
	}
	run := func(p int) []float64 {
		var ke []float64
		_, _, err := simnet.Run(p, aleTestNet(), func(n *simnet.Node) {
			m := wingMesh(t, 2, 12, 2, 2)
			ns, err := NewNSALE(m, cfg, mpi.World(n), nil)
			if err != nil {
				panic(err)
			}
			ns.SetUniformInitial(1, 0, 0)
			var local []float64
			for i := 0; i < 3; i++ {
				ns.Step()
				local = append(local, ns.KineticEnergy())
			}
			if n.Rank == 0 {
				ke = local
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return ke
	}
	ke1 := run(1)
	ke4 := run(4)
	for i := range ke1 {
		if math.Abs(ke1[i]-ke4[i]) > 1e-6*math.Abs(ke1[i]) {
			t.Fatalf("step %d: serial KE %v vs parallel KE %v", i, ke1[i], ke4[i])
		}
	}
}

func TestALEFlappingWingSmoke(t *testing.T) {
	// The full moving-mesh configuration: heaving NACA 4420 section.
	// The mesh must stay valid and the energy finite.
	cfg := ALEConfig{
		Nu: 0.05, Dt: 2e-3, Order: 2,
		FarfieldVel: [3]float64{1, 0, 0},
		WallVelocity: func(t float64) [3]float64 {
			return [3]float64{0, 0.3 * math.Cos(2*math.Pi*t), 0}
		},
		MoveMesh: true,
	}
	_, _, err := simnet.Run(2, aleTestNet(), func(n *simnet.Node) {
		m := wingMesh(t, 2, 12, 2, 2)
		ns, err := NewNSALE(m, cfg, mpi.World(n), nil)
		if err != nil {
			panic(err)
		}
		ns.SetUniformInitial(1, 0, 0)
		y0 := m.Verts[0][1]
		for i := 0; i < 5; i++ {
			ns.Step()
		}
		ke := ns.KineticEnergy()
		if math.IsNaN(ke) || ke <= 0 {
			t.Errorf("kinetic energy %g", ke)
		}
		if ns.ItersPressure == 0 || ns.ItersViscous == 0 {
			t.Errorf("PCG did not iterate (p=%d v=%d)", ns.ItersPressure, ns.ItersViscous)
		}
		// The wall moved, so near-wing vertices must have moved.
		if m.Verts[0][1] == y0 {
			t.Error("mesh did not move")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestALEStageAccounting(t *testing.T) {
	cfg := ALEConfig{
		Nu: 0.1, Dt: 5e-3, Order: 1,
		FarfieldVel: [3]float64{1, 0, 0},
		WallVelocity: func(t float64) [3]float64 {
			return [3]float64{0, 0.1, 0}
		},
		MoveMesh: true,
	}
	_, _, err := simnet.Run(1, aleTestNet(), func(n *simnet.Node) {
		m := wingMesh(t, 2, 10, 2, 2)
		ns, err := NewNSALE(m, cfg, mpi.World(n), nil)
		if err != nil {
			panic(err)
		}
		ns.SetUniformInitial(1, 0, 0)
		ns.Stages().Attach()
		ns.Step()
		ns.Stages().Detach()
		// All three regions record work; the solve regions dominate, as
		// in Figures 15-16 where b+c is ~90%.
		var secs [3]float64
		for i := 0; i < 3; i++ {
			if ns.Stages().Counts[i].TotalFlops() == 0 {
				t.Errorf("region %q recorded no flops", ns.Stages().Names[i])
			}
			secs[i] = float64(ns.Stages().Counts[i].TotalFlops())
		}
		if secs[1]+secs[2] < secs[0] {
			t.Errorf("solves should dominate: a=%v b=%v c=%v", secs[0], secs[1], secs[2])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestALERejectsBadInput(t *testing.T) {
	m2, err := mesh.RectQuad(2, 2, 2, 0, 1, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = simnet.Run(1, aleTestNet(), func(n *simnet.Node) {
		if _, err := NewNSALE(m2, ALEConfig{Nu: 1, Dt: 1, Order: 1}, mpi.World(n), nil); err == nil {
			t.Error("2D mesh should be rejected")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestALEForcesOnWing(t *testing.T) {
	// Impulsively started flow past the wing: after a few steps the
	// drag is positive and finite; the parallel reduction matches the
	// serial value.
	cfg := ALEConfig{
		Nu: 0.05, Dt: 2e-3, Order: 2,
		FarfieldVel: [3]float64{1, 0, 0},
	}
	run := func(p int) [3]float64 {
		var f [3]float64
		_, _, err := simnet.Run(p, aleTestNet(), func(n *simnet.Node) {
			// Order 3 resolves the airfoil pressure well enough for a
			// physical drag sign; order 2 on this coarse O-grid does
			// not.
			m := wingMesh(t, 3, 16, 3, 2)
			ns, err := NewNSALE(m, cfg, mpi.World(n), nil)
			if err != nil {
				panic(err)
			}
			ns.SetUniformInitial(1, 0, 0)
			// Step past the impulsive-start transient, whose pressure
			// spike makes the first few force samples negative.
			for i := 0; i < 8; i++ {
				ns.Step()
			}
			got := ns.Forces()
			if n.Rank == 0 {
				f = got
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f1 := run(1)
	if math.IsNaN(f1[0]) || f1[0] <= 0 {
		t.Fatalf("drag %v should be positive once the transient passes", f1[0])
	}
	// Spanwise symmetry: no z-force.
	if math.Abs(f1[2]) > 1e-6 {
		t.Fatalf("spanwise force %v should vanish by symmetry", f1[2])
	}
	f2 := run(2)
	for c := 0; c < 3; c++ {
		if math.Abs(f1[c]-f2[c]) > 1e-8*(1+math.Abs(f1[c])) {
			t.Fatalf("component %d: serial %v vs parallel %v", c, f1[c], f2[c])
		}
	}
}
