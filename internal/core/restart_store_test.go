package core

import (
	"bytes"
	"os"
	"testing"

	"nektar/internal/ckpt"
	"nektar/internal/engine"
	"nektar/internal/fault"
	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

// nsfStoreRecovery is the shared fault-tolerant Fourier run the
// durable-store tests drive through the generic harness.
func nsfStoreRecovery(t *testing.T) Recovery {
	t.Helper()
	return Recovery{
		Procs: 2,
		Model: aleTestNet(),
		NewSolver: func(rank int, comm *mpi.Comm) (engine.Solver, error) {
			ns, err := NewNSF(channelMesh(t, 4, 3, 2, 3), nsfChannelCfg(0.1, 2e-3), comm, nil)
			if err != nil {
				return nil, err
			}
			ns.SetUniformInitial(1, 0)
			return ns, nil
		},
		Steps:           8,
		CheckpointEvery: 2,
		CheckpointCostS: 1e-4,
	}
}

// TestRecoveryKilledRunCorruptedStoreBitIdentical is the PR's e2e
// acceptance criterion: a run is killed mid-flight (the process gone,
// only its on-disk store left behind), the newest checkpoint record is
// then damaged on disk, and a fresh process warm-starts from the
// previous valid checkpoint to a final state bit-identical to an
// uninterrupted run.
func TestRecoveryKilledRunCorruptedStoreBitIdentical(t *testing.T) {
	base := nsfStoreRecovery(t)
	ref, err := RunRecovery(base)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if ref.Attempts != 1 {
		t.Fatalf("reference run took %d attempts", ref.Attempts)
	}

	// The "killed" run: a crash with no retry budget plays the role of
	// an operator's kill -9 — the process dies, the store survives.
	store, err := ckpt.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	killed := base
	killed.Store, killed.Kind = store, "nsf"
	killed.MaxAttempts = 1
	killed.Plans = []simnet.Injector{fault.NewPlan(1).Crash(1, 0.8*ref.VirtualWall)}
	if _, err := RunRecovery(killed); err == nil {
		t.Fatal("killed run reported success")
	}
	steps, err := store.Steps()
	if err != nil || len(steps) < 2 {
		t.Fatalf("store after the kill holds steps %v (err %v); need at least two to corrupt one", steps, err)
	}
	newest, prev := steps[len(steps)-1], steps[len(steps)-2]

	// Damage the newest record on disk the way a dying node does — one
	// flipped bit in rank 1's file.
	path := store.Path(newest, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if s, _, lerr := ckpt.Latest(store, base.Procs); lerr != nil || s != prev {
		t.Fatalf("Latest = %d (err %v), want fallback to step %d past the damaged step %d", s, lerr, prev, newest)
	}

	// A fresh fault-free process over the same store must resume from
	// the surviving checkpoint, not recompute from scratch.
	resumed := base
	resumed.Store, resumed.Kind = store, "nsf"
	got, err := RunRecovery(resumed)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got.Attempts != 1 {
		t.Fatalf("resumed run took %d attempts, want 1", got.Attempts)
	}
	if want := base.Steps - prev; got.StepsComputed != want {
		t.Errorf("resumed run computed %d steps, want %d (warm start from step %d)", got.StepsComputed, want, prev)
	}
	if len(got.Final) != len(ref.Final) {
		t.Fatalf("final state count %d, want %d", len(got.Final), len(ref.Final))
	}
	for r := range ref.Final {
		if !bytes.Equal(ref.Final[r], got.Final[r]) {
			t.Fatalf("rank %d: resumed final state differs from the uninterrupted reference (not bit-identical)", r)
		}
	}
}

// An empty durable store must behave exactly like no store: the run
// starts from step 0 and leaves verifiable records behind.
func TestRecoveryEmptyStoreCleanStart(t *testing.T) {
	base := nsfStoreRecovery(t)
	ref, err := RunRecovery(base)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	stored := base
	stored.Store, stored.Kind = ckpt.NewMemStore(), "nsf"
	got, err := RunRecovery(stored)
	if err != nil {
		t.Fatalf("stored run: %v", err)
	}
	if got.StepsComputed != base.Steps {
		t.Errorf("computed %d steps, want %d (no warm start from an empty store)", got.StepsComputed, base.Steps)
	}
	for r := range ref.Final {
		if !bytes.Equal(ref.Final[r], got.Final[r]) {
			t.Fatalf("rank %d: store-enabled run diverged from the storeless reference", r)
		}
	}
	s, states, err := ckpt.Latest(stored.Store, base.Procs)
	if err != nil || s != 6 || len(states) != base.Procs {
		t.Fatalf("store after the run: Latest = %d (err %v), want the last mid-run checkpoint (6)", s, err)
	}
}
