package core

import "math"

// Numerical-health sampling hooks: each solver reports the largest
// field magnitude on this rank and whether every sampled value is
// finite. The supervisor's watchdog polls them once per step to catch
// NaN/Inf contamination and runaway growth (a blown CFL condition)
// before the corruption reaches a checkpoint. The scan covers the
// fields a restart depends on — velocity and pressure dofs — so a trip
// implies the state is not worth saving.

// healthScan folds one dof slice into a running (maxAbs, finite) pair.
func healthScan(v []float64, maxAbs float64, finite bool) (float64, bool) {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			finite = false
			continue
		}
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	return maxAbs, finite
}

// HealthSample reports the rank-local numerical health of the 2D
// solver's velocity and pressure fields.
func (ns *NS2D) HealthSample() (maxAbs float64, finite bool) {
	finite = true
	for c := 0; c < 2; c++ {
		maxAbs, finite = healthScan(ns.U[c], maxAbs, finite)
	}
	maxAbs, finite = healthScan(ns.P, maxAbs, finite)
	return maxAbs, finite
}

// HealthSample reports the rank-local numerical health of this rank's
// Fourier mode (velocity and pressure, real and imaginary parts).
func (ns *NSF) HealthSample() (maxAbs float64, finite bool) {
	finite = true
	for c := 0; c < 3; c++ {
		for part := 0; part < 2; part++ {
			maxAbs, finite = healthScan(ns.U[c][part], maxAbs, finite)
		}
	}
	for part := 0; part < 2; part++ {
		maxAbs, finite = healthScan(ns.P[part], maxAbs, finite)
	}
	return maxAbs, finite
}

// HealthSample reports the rank-local numerical health of the ALE
// solver's velocity and pressure dofs.
func (ns *NSALE) HealthSample() (maxAbs float64, finite bool) {
	finite = true
	for c := 0; c < 3; c++ {
		maxAbs, finite = healthScan(ns.U[c], maxAbs, finite)
	}
	maxAbs, finite = healthScan(ns.Pr, maxAbs, finite)
	return maxAbs, finite
}
