package core

import (
	"fmt"
	"io"
	"math"

	"nektar/internal/mpi"
)

// The paper's Nektar-F communication inventory (section 4.2.1) lists,
// besides the Alltoall of the nonlinear step:
//
//   - "Global Addition, min, max for any runtime flow statistics"
//   - "Gather, for possible tracking of flow variables during
//     on-the-fly analysis of data"
//   - "Sends (all but processor 0) and Receives (processor 0) for
//     output of the solution field (if required)"
//
// This file implements those three paths.

// FlowStats are globally reduced runtime statistics of the 3D field.
type FlowStats struct {
	Energy   float64 // total kinetic-energy-like modal energy
	MaxVel   float64 // max pointwise |u| over all planes (from mean + modes)
	MinU     float64 // min streamwise velocity of the mean mode
	CFL      float64 // advective CFL estimate max(|u|) * dt / hmin
	DivLinf  float64 // max |div u| in Fourier space
	ModeErgs []float64
}

// Statistics computes globally reduced flow statistics (collective
// call): per-mode energies gathered with a global Allreduce, extrema
// with min/max reductions — the paper's "runtime flow statistics"
// communication.
func (ns *NSF) Statistics() FlowStats {
	p := ns.Comm.Size()
	// Local quantities.
	energy := ns.ModeEnergy()
	var maxVel, minU float64
	minU = math.Inf(1)
	var divMax float64
	grad := [][]float64{nil, nil}
	for ei, el := range ns.M.Elems {
		nq := el.Ref.NQuad
		coef := make([]float64, el.Ref.NModes)
		var uq [3][]float64
		for c := 0; c < 3; c++ {
			uq[c] = make([]float64, nq)
			ns.AV.Scatter(ei, ns.U[c][0], coef)
			el.BwdTrans(coef, uq[c])
		}
		grad[0] = make([]float64, nq)
		grad[1] = make([]float64, nq)
		div := make([]float64, nq)
		ns.AV.Scatter(ei, ns.U[0][0], coef)
		el.PhysGrad(coef, grad)
		copy(div, grad[0])
		ns.AV.Scatter(ei, ns.U[1][0], coef)
		el.PhysGrad(coef, grad)
		// The in-plane divergence du/dx + dv/dy of this mode; the
		// spanwise ik*w contribution mixes real and imaginary parts
		// and is folded in modally by the pressure step, so the
		// statistic tracks the splitting error of the plane terms.
		for q := 0; q < nq; q++ {
			div[q] += grad[1][q]
			v := math.Sqrt(uq[0][q]*uq[0][q] + uq[1][q]*uq[1][q] + uq[2][q]*uq[2][q])
			if v > maxVel {
				maxVel = v
			}
			if uq[0][q] < minU {
				minU = uq[0][q]
			}
			if a := math.Abs(div[q]); a > divMax {
				divMax = a
			}
		}
	}
	// Global reductions: Sum for energies, Max/Min for extrema.
	sums := ns.Comm.Allreduce([]float64{energy}, mpi.Sum)
	maxs := ns.Comm.Allreduce([]float64{maxVel, divMax}, mpi.Max)
	mins := ns.Comm.Allreduce([]float64{minU}, mpi.Min)
	// Per-mode energy spectrum: a packed Allreduce (each rank owns one
	// slot).
	spectrum := make([]float64, p)
	spectrum[ns.K] = energy
	spectrum = ns.Comm.Allreduce(spectrum, mpi.Sum)

	hmin := ns.minEdge()
	st := FlowStats{
		Energy:   sums[0],
		MaxVel:   maxs[0],
		DivLinf:  maxs[1],
		MinU:     mins[0],
		ModeErgs: spectrum,
	}
	if hmin > 0 {
		st.CFL = maxs[0] * ns.Cfg.Dt / hmin
	}
	return st
}

// minEdge estimates the smallest element edge length (for the CFL
// estimate).
func (ns *NSF) minEdge() float64 {
	h := math.Inf(1)
	m := ns.M
	for _, el := range m.Elems {
		for _, ev := range [][2]int{{0, 1}, {1, 2}} {
			a := m.Verts[el.Vert[ev[0]%len(el.Vert)]]
			b := m.Verts[el.Vert[ev[1]%len(el.Vert)]]
			d := math.Hypot(a[0]-b[0], a[1]-b[1])
			if d > 0 && d < h {
				h = d
			}
		}
	}
	return h
}

// HistoryPoint samples the velocity of this rank's Fourier mode at the
// quadrature point nearest (x, y) and gathers all modes at rank 0 —
// the paper's "tracking of flow variables during on-the-fly analysis".
// Rank 0 receives one [6]float64 (re/im of u, v, w) per mode; other
// ranks receive nil.
func (ns *NSF) HistoryPoint(x, y float64) [][]float64 {
	// Nearest quadrature point.
	bestEl, bestQ := 0, 0
	best := math.Inf(1)
	for ei, el := range ns.M.Elems {
		for q := 0; q < el.Ref.NQuad; q++ {
			d := (el.X[0][q]-x)*(el.X[0][q]-x) + (el.X[1][q]-y)*(el.X[1][q]-y)
			if d < best {
				best, bestEl, bestQ = d, ei, q
			}
		}
	}
	el := ns.M.Elems[bestEl]
	coef := make([]float64, el.Ref.NModes)
	phys := make([]float64, el.Ref.NQuad)
	sample := make([]float64, 6)
	for c := 0; c < 3; c++ {
		for part := 0; part < 2; part++ {
			ns.AV.Scatter(bestEl, ns.U[c][part], coef)
			el.BwdTrans(coef, phys)
			sample[2*c+part] = phys[bestQ]
		}
	}
	return ns.Comm.Gather(0, sample)
}

// WriteField gathers the mean-mode (k = 0) velocity field at rank 0
// and writes it as a simple column file (x y u v), the paper's
// "output of the solution field" path: all ranks send, processor 0
// receives and writes. Only rank 0 writes; w returns nil elsewhere.
func (ns *NSF) WriteField(w io.Writer) error {
	// Every rank sends its mean-mode contribution; only rank 0's own
	// data is the true k = 0 field, but the communication pattern —
	// everyone sends to 0 — is what the paper describes, so all ranks
	// participate.
	var local []float64
	for ei, el := range ns.M.Elems {
		nq := el.Ref.NQuad
		coef := make([]float64, el.Ref.NModes)
		u := make([]float64, nq)
		v := make([]float64, nq)
		ns.AV.Scatter(ei, ns.U[0][0], coef)
		el.BwdTrans(coef, u)
		ns.AV.Scatter(ei, ns.U[1][0], coef)
		el.BwdTrans(coef, v)
		for q := 0; q < nq; q++ {
			local = append(local, el.X[0][q], el.X[1][q], u[q], v[q])
		}
	}
	all := ns.Comm.Gather(0, local)
	if ns.Comm.Rank() != 0 {
		return nil
	}
	if w == nil {
		return fmt.Errorf("core: WriteField needs a writer on rank 0")
	}
	if _, err := fmt.Fprintf(w, "# x y u v (mean Fourier mode, %d ranks)\n", len(all)); err != nil {
		return err
	}
	buf := all[0]
	for i := 0; i+3 < len(buf); i += 4 {
		if _, err := fmt.Fprintf(w, "%g %g %g %g\n", buf[i], buf[i+1], buf[i+2], buf[i+3]); err != nil {
			return err
		}
	}
	return nil
}
