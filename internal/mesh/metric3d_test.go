package mesh

import (
	"math"
	"testing"

	"nektar/internal/basis"
)

// trimap evaluates the trilinear hex mapping directly (reference
// implementation for metric regression tests; a transposed 3D
// Jacobian inverse once slipped past all axis-aligned meshes).
func trimap(verts [][3]float64, spec []int, xi1, xi2, xi3 float64) [3]float64 {
	corners := [8][3]float64{
		{-1, -1, -1}, {1, -1, -1}, {1, 1, -1}, {-1, 1, -1},
		{-1, -1, 1}, {1, -1, 1}, {1, 1, 1}, {-1, 1, 1},
	}
	var out [3]float64
	for c := 0; c < 8; c++ {
		w := (1 + corners[c][0]*xi1) * (1 + corners[c][1]*xi2) * (1 + corners[c][2]*xi3) / 8
		v := verts[spec[c]]
		for e := 0; e < 3; e++ {
			out[e] += w * v[e]
		}
	}
	return out
}

func TestSkewedHexFaceNormalsMatchTangentCross(t *testing.T) {
	verts := [][3]float64{
		{0, 0, 0}, {1.2, 0.1, -0.05}, {1.3, 1.1, 0.1}, {-0.1, 0.9, 0.05},
		{0.05, -0.1, 1.0}, {1.25, 0.0, 1.1}, {1.4, 1.2, 1.25}, {0.0, 1.0, 1.05},
	}
	spec := []int{0, 1, 2, 3, 4, 5, 6, 7}
	m, err := New(3, verts, []ElemSpec{{Shape: basis.Hex, Verts: spec}})
	if err != nil {
		t.Fatal(err)
	}
	el := m.Elems[0]
	ref := el.Ref
	pts := ref.Pts[0]
	// Face 5: xi1 = +1. Check SJ*n against FD cross product at a few points.
	fq := NewFaceQuad(m, el, 5)
	h := 1e-6
	for k, s := range fq.Src {
		// recover (j, k) from position: free = {1,2}
		j := k / ref.QDim[2]
		kk := k % ref.QDim[2]
		xi2, xi3 := pts[j], pts[kk]
		ta := [3]float64{}
		tb := [3]float64{}
		p1 := trimap(verts, spec, 1, xi2+h, xi3)
		p2 := trimap(verts, spec, 1, xi2-h, xi3)
		q1 := trimap(verts, spec, 1, xi2, xi3+h)
		q2 := trimap(verts, spec, 1, xi2, xi3-h)
		for e := 0; e < 3; e++ {
			ta[e] = (p1[e] - p2[e]) / (2 * h)
			tb[e] = (q1[e] - q2[e]) / (2 * h)
		}
		cross := [3]float64{
			ta[1]*tb[2] - ta[2]*tb[1],
			ta[2]*tb[0] - ta[0]*tb[2],
			ta[0]*tb[1] - ta[1]*tb[0],
		}
		got := [3]float64{fq.SJ[k] * fq.Nx[k], fq.SJ[k] * fq.Ny[k], fq.SJ[k] * fq.Nz[k]}
		for e := 0; e < 3; e++ {
			if math.Abs(got[e]-cross[e]) > 1e-4 {
				t.Fatalf("src %d (j=%d k=%d): SJ*n = %v vs cross %v", s, j, kk, got, cross)
			}
		}
	}
}

func TestSkewedHexPhysicalGradient(t *testing.T) {
	// The physical gradient of a projected linear field on a fully
	// skewed hex must be exact — this is the test that catches any
	// transposition in the 3D metric terms.
	verts := [][3]float64{
		{0, 0, 0}, {1.2, 0.1, -0.05}, {1.3, 1.1, 0.1}, {-0.1, 0.9, 0.05},
		{0.05, -0.1, 1.0}, {1.25, 0.0, 1.1}, {1.4, 1.2, 1.25}, {0.0, 1.0, 1.05},
	}
	m, err := New(4, verts, []ElemSpec{{Shape: basis.Hex, Verts: []int{0, 1, 2, 3, 4, 5, 6, 7}}})
	if err != nil {
		t.Fatal(err)
	}
	el := m.Elems[0]
	nq := el.Ref.NQuad
	phys := make([]float64, nq)
	for q := 0; q < nq; q++ {
		phys[q] = 2*el.X[0][q] - 3*el.X[1][q] + 0.5*el.X[2][q] + 1
	}
	coef := make([]float64, el.Ref.NModes)
	el.FwdTrans(phys, coef)
	grad := [][]float64{make([]float64, nq), make([]float64, nq), make([]float64, nq)}
	el.PhysGrad(coef, grad)
	want := []float64{2, -3, 0.5}
	for d := 0; d < 3; d++ {
		for q := 0; q < nq; q++ {
			if math.Abs(grad[d][q]-want[d]) > 1e-8 {
				t.Fatalf("d=%d q=%d: grad %v, want %v", d, q, grad[d][q], want[d])
			}
		}
	}
}
