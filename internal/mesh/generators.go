package mesh

import (
	"fmt"
	"math"

	"nektar/internal/basis"
)

// RectQuad builds a structured nx-by-ny quadrilateral mesh of the
// rectangle [x0,x1]x[y0,y1]. Boundary edges are tagged by the
// classifier if non-nil, else left untagged.
func RectQuad(order, nx, ny int, x0, x1, y0, y1 float64, classify func(x, y, z float64) string) (*Mesh, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("mesh: RectQuad needs nx, ny >= 1")
	}
	verts := make([][3]float64, 0, (nx+1)*(ny+1))
	for j := 0; j <= ny; j++ {
		for i := 0; i <= nx; i++ {
			x := x0 + (x1-x0)*float64(i)/float64(nx)
			y := y0 + (y1-y0)*float64(j)/float64(ny)
			verts = append(verts, [3]float64{x, y, 0})
		}
	}
	vid := func(i, j int) int { return j*(nx+1) + i }
	var specs []ElemSpec
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			specs = append(specs, ElemSpec{
				Shape: basis.Quad,
				Verts: []int{vid(i, j), vid(i+1, j), vid(i+1, j+1), vid(i, j+1)},
			})
		}
	}
	m, err := New(order, verts, specs)
	if err != nil {
		return nil, err
	}
	if classify != nil {
		m.TagBoundary(classify)
	}
	return m, nil
}

// RectTri builds a structured triangular mesh of a rectangle: each
// quad cell split into two counter-clockwise triangles.
func RectTri(order, nx, ny int, x0, x1, y0, y1 float64, classify func(x, y, z float64) string) (*Mesh, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("mesh: RectTri needs nx, ny >= 1")
	}
	verts := make([][3]float64, 0, (nx+1)*(ny+1))
	for j := 0; j <= ny; j++ {
		for i := 0; i <= nx; i++ {
			x := x0 + (x1-x0)*float64(i)/float64(nx)
			y := y0 + (y1-y0)*float64(j)/float64(ny)
			verts = append(verts, [3]float64{x, y, 0})
		}
	}
	vid := func(i, j int) int { return j*(nx+1) + i }
	var specs []ElemSpec
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			a, b, c, d := vid(i, j), vid(i+1, j), vid(i+1, j+1), vid(i, j+1)
			// Alternate the diagonal for isotropy.
			if (i+j)%2 == 0 {
				specs = append(specs,
					ElemSpec{Shape: basis.Tri, Verts: []int{a, b, c}},
					ElemSpec{Shape: basis.Tri, Verts: []int{a, c, d}})
			} else {
				specs = append(specs,
					ElemSpec{Shape: basis.Tri, Verts: []int{a, b, d}},
					ElemSpec{Shape: basis.Tri, Verts: []int{b, c, d}})
			}
		}
	}
	m, err := New(order, verts, specs)
	if err != nil {
		return nil, err
	}
	if classify != nil {
		m.TagBoundary(classify)
	}
	return m, nil
}

// Curve is a closed curve parametrized by u in [0, 1).
type Curve func(u float64) (x, y float64)

// Circle returns a circular curve of the given radius centred at
// (cx, cy), traversed counter-clockwise.
func Circle(cx, cy, r float64) Curve {
	return func(u float64) (float64, float64) {
		th := 2 * math.Pi * u
		return cx + r*math.Cos(th), cy + r*math.Sin(th)
	}
}

// RectBoundary returns the boundary of [x0,x1]x[y0,y1] parametrized by
// the polar angle about the rectangle centre, so that it can be paired
// with a star-shaped inner curve in an O-grid.
func RectBoundary(x0, x1, y0, y1 float64) Curve {
	cx, cy := 0.5*(x0+x1), 0.5*(y0+y1)
	return func(u float64) (float64, float64) {
		th := 2 * math.Pi * u
		dx, dy := math.Cos(th), math.Sin(th)
		t := math.Inf(1)
		if dx > 1e-15 {
			t = math.Min(t, (x1-cx)/dx)
		} else if dx < -1e-15 {
			t = math.Min(t, (x0-cx)/dx)
		}
		if dy > 1e-15 {
			t = math.Min(t, (y1-cy)/dy)
		} else if dy < -1e-15 {
			t = math.Min(t, (y0-cy)/dy)
		}
		return cx + t*dx, cy + t*dy
	}
}

// NACA4 returns the closed boundary curve of a NACA 4-digit airfoil
// with maximum camber m at position p (fractions of chord) and
// thickness t, chord [0, 1] along x. u = 0 starts at the trailing
// edge, runs over the upper surface to the leading edge and back along
// the lower surface. The paper's flapping-wing case uses NACA 4420:
// NACA4(0.04, 0.4, 0.20).
func NACA4(m, p, t float64) Curve {
	thickness := func(x float64) float64 {
		// Closed trailing edge variant (-0.1036 coefficient).
		return 5 * t * (0.2969*math.Sqrt(x) - 0.1260*x - 0.3516*x*x + 0.2843*x*x*x - 0.1036*x*x*x*x)
	}
	camber := func(x float64) (yc, dyc float64) {
		if m == 0 {
			return 0, 0
		}
		if x < p {
			return m / (p * p) * (2*p*x - x*x), 2 * m / (p * p) * (p - x)
		}
		return m / ((1 - p) * (1 - p)) * ((1 - 2*p) + 2*p*x - x*x),
			2 * m / ((1 - p) * (1 - p)) * (p - x)
	}
	return func(u float64) (float64, float64) {
		// Cosine clustering: s in [0, 2pi), x = (1+cos s)/2 maps
		// s=0 -> TE, s=pi -> LE; upper surface first.
		s := 2 * math.Pi * u
		x := 0.5 * (1 + math.Cos(s))
		yt := thickness(x)
		yc, dyc := camber(x)
		th := math.Atan(dyc)
		if s <= math.Pi { // upper
			return x - yt*math.Sin(th), yc + yt*math.Cos(th)
		}
		return x + yt*math.Sin(th), yc - yt*math.Cos(th)
	}
}

// OGrid builds an O-type quadrilateral mesh between a star-shaped
// inner curve (e.g. a cylinder or airfoil surface) and an outer curve,
// with nt elements around and nr element rings radially. grading > 1
// clusters rings toward the inner (wall) curve. Inner boundary edges
// are tagged "wall"; outer edges are tagged by classify (or "farfield"
// if nil).
func OGrid(order, nt, nr int, inner, outer Curve, grading float64, classify func(x, y, z float64) string) (*Mesh, error) {
	if nt < 3 || nr < 1 {
		return nil, fmt.Errorf("mesh: OGrid needs nt >= 3, nr >= 1")
	}
	if grading <= 0 {
		grading = 1
	}
	// Radial blend parameter for ring j.
	tOf := func(j int) float64 {
		s := float64(j) / float64(nr)
		if grading == 1 {
			return s
		}
		return (math.Pow(grading, s*float64(nr)) - 1) / (math.Pow(grading, float64(nr)) - 1)
	}
	verts := make([][3]float64, 0, nt*(nr+1))
	for j := 0; j <= nr; j++ {
		tj := tOf(j)
		for i := 0; i < nt; i++ {
			u := float64(i) / float64(nt)
			xi, yi := inner(u)
			xo, yo := outer(u)
			verts = append(verts, [3]float64{(1-tj)*xi + tj*xo, (1-tj)*yi + tj*yo, 0})
		}
	}
	vid := func(i, j int) int { return j*nt + (i % nt) }
	var specs []ElemSpec
	for j := 0; j < nr; j++ {
		for i := 0; i < nt; i++ {
			// Local xi1 radial (outward), xi2 azimuthal (CCW) keeps the
			// Jacobian positive for CCW curves.
			specs = append(specs, ElemSpec{
				Shape: basis.Quad,
				Verts: []int{vid(i, j), vid(i, j+1), vid(i+1, j+1), vid(i+1, j)},
			})
		}
	}
	m, err := New(order, verts, specs)
	if err != nil {
		return nil, err
	}
	// Tag: inner ring edges are walls, outer by classifier.
	innerRadius := map[int]bool{}
	for i := 0; i < nt; i++ {
		innerRadius[vid(i, 0)] = true
	}
	m.TagBoundary(func(x, y, z float64) string { return "outer?" })
	for bi := range m.BndEdges {
		be := &m.BndEdges[bi]
		el := m.Elems[be.Elem]
		ev := EdgeVertsOf(el.Ref.Shape)[be.LocalEdge]
		a, b := el.Vert[ev[0]], el.Vert[ev[1]]
		if innerRadius[a] && innerRadius[b] {
			be.Tag = "wall"
			continue
		}
		pa, pb := m.Verts[a], m.Verts[b]
		if classify != nil {
			be.Tag = classify(0.5*(pa[0]+pb[0]), 0.5*(pa[1]+pb[1]), 0)
		} else {
			be.Tag = "farfield"
		}
	}
	return m, nil
}

// BluffBody builds the paper's serial-benchmark geometry: a circular
// cylinder of unit diameter centred at the origin inside the
// rectangular domain [-15, 25] x [-9, 9] (Figure 11, left), meshed as
// a graded O-grid. Outer edges are tagged inflow (x < 0), outflow
// (x > 0 far side) or side.
func BluffBody(order, nt, nr int) (*Mesh, error) {
	inner := Circle(0, 0, 0.5)
	outer := RectBoundary(-15, 25, -9, 9)
	// Generous outflow/inflow sectors so that even coarse angular
	// resolutions tag some outflow edges (the pressure Poisson system
	// needs at least one Dirichlet edge).
	return OGrid(order, nt, nr, inner, outer, 1.25, func(x, y, z float64) string {
		switch {
		case x <= -10:
			return "inflow"
		case x >= 15:
			return "outflow"
		default:
			return "side"
		}
	})
}

// BoxHex builds a structured nx-by-ny-by-nz hexahedral mesh of
// [x0,x1]x[y0,y1]x[z0,z1].
func BoxHex(order, nx, ny, nz int, x0, x1, y0, y1, z0, z1 float64, classify func(x, y, z float64) string) (*Mesh, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("mesh: BoxHex needs nx, ny, nz >= 1")
	}
	verts := make([][3]float64, 0, (nx+1)*(ny+1)*(nz+1))
	for k := 0; k <= nz; k++ {
		for j := 0; j <= ny; j++ {
			for i := 0; i <= nx; i++ {
				verts = append(verts, [3]float64{
					x0 + (x1-x0)*float64(i)/float64(nx),
					y0 + (y1-y0)*float64(j)/float64(ny),
					z0 + (z1-z0)*float64(k)/float64(nz),
				})
			}
		}
	}
	vid := func(i, j, k int) int { return (k*(ny+1)+j)*(nx+1) + i }
	var specs []ElemSpec
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				specs = append(specs, ElemSpec{
					Shape: basis.Hex,
					Verts: []int{
						vid(i, j, k), vid(i+1, j, k), vid(i+1, j+1, k), vid(i, j+1, k),
						vid(i, j, k+1), vid(i+1, j, k+1), vid(i+1, j+1, k+1), vid(i, j+1, k+1),
					},
				})
			}
		}
	}
	m, err := New(order, verts, specs)
	if err != nil {
		return nil, err
	}
	if classify != nil {
		m.TagBoundary(classify)
	}
	return m, nil
}

// ExtrudeQuads extrudes a 2D all-quad mesh through nz layers spanning
// [z0, z1], producing a hexahedral mesh. 2D boundary tags become the
// lateral face tags; the z extremes are tagged "zlow" and "zhigh".
// This is how the paper's flapping-wing hex mesh is built from the
// wing-section O-grid.
func ExtrudeQuads(m2 *Mesh, order, nz int, z0, z1 float64) (*Mesh, error) {
	if m2.Dim != 2 {
		return nil, fmt.Errorf("mesh: ExtrudeQuads needs a 2D mesh")
	}
	for _, el := range m2.Elems {
		if el.Ref.Shape != basis.Quad {
			return nil, fmt.Errorf("mesh: ExtrudeQuads needs all-quad input")
		}
	}
	nv := len(m2.Verts)
	verts := make([][3]float64, 0, nv*(nz+1))
	for k := 0; k <= nz; k++ {
		z := z0 + (z1-z0)*float64(k)/float64(nz)
		for _, v := range m2.Verts {
			verts = append(verts, [3]float64{v[0], v[1], z})
		}
	}
	var specs []ElemSpec
	for k := 0; k < nz; k++ {
		lo, hi := k*nv, (k+1)*nv
		for _, el := range m2.Elems {
			v := el.Vert
			specs = append(specs, ElemSpec{
				Shape: basis.Hex,
				Verts: []int{
					lo + v[0], lo + v[1], lo + v[2], lo + v[3],
					hi + v[0], hi + v[1], hi + v[2], hi + v[3],
				},
			})
		}
	}
	m, err := New(order, verts, specs)
	if err != nil {
		return nil, err
	}
	// Tag lateral faces from the 2D boundary tags, z extremes by name.
	tag2d := map[edgeKey]string{}
	for _, be := range m2.BndEdges {
		el := m2.Elems[be.Elem]
		ev := EdgeVertsOf(el.Ref.Shape)[be.LocalEdge]
		tag2d[mkEdgeKey(el.Vert[ev[0]], el.Vert[ev[1]])] = be.Tag
	}
	m.TagBoundary(func(x, y, z float64) string { return "" })
	for bi := range m.BndFaces {
		bf := &m.BndFaces[bi]
		el := m.Elems[bf.Elem]
		fv := basis.HexFaceVerts[bf.LocalFace]
		// Gather the distinct 2D vertex ids of the face corners.
		var base []int
		zsum := 0.0
		for _, lv := range fv {
			g := el.Vert[lv]
			base = append(base, g%nv)
			zsum += verts[g][2]
		}
		zc := zsum / 4
		switch {
		case base[0] == base[3] && base[1] == base[2]:
			// Lateral face: corners are two 2D vertices at two layers.
			bf.Tag = tag2d[mkEdgeKey(base[0], base[1])]
		case base[0] == base[1] && base[2] == base[3]:
			bf.Tag = tag2d[mkEdgeKey(base[0], base[2])]
		case math.Abs(zc-z0) < math.Abs(zc-z1):
			bf.Tag = "zlow"
		default:
			bf.Tag = "zhigh"
		}
	}
	return m, nil
}

// WingSection builds the 2D O-grid around a NACA 4420 airfoil used as
// the cross-section of the paper's flapping-wing mesh: the wing
// surface is tagged "wall", the outer boundary "farfield".
func WingSection(order, nt, nr int) (*Mesh, error) {
	inner := NACA4(0.04, 0.4, 0.20)
	// Domain 10 x 5 around the wing (paper: 10 by 5 by 5), wing chord
	// [0, 1] placed with upstream third.
	outer := RectBoundary(-3, 7, -2.5, 2.5)
	return OGrid(order, nt, nr, inner, outer, 1.3, func(x, y, z float64) string {
		return "farfield"
	})
}
