package mesh

import (
	"fmt"
	"sort"

	"nektar/internal/basis"
)

// ElemSpec describes one element of a mesh by shape and global vertex
// ids (in the local ordering conventions of package basis).
type ElemSpec struct {
	Shape basis.Shape
	Verts []int
}

// BndEdge is a boundary edge of a 2D mesh.
type BndEdge struct {
	Elem      int // element id
	LocalEdge int
	Edge      int    // global edge id
	Tag       string // boundary region label (wall, inflow, ...)
}

// BndFace is a boundary face of a 3D mesh.
type BndFace struct {
	Elem      int
	LocalFace int
	Face      int
	Tag       string
}

// Mesh is an unstructured spectral/hp element mesh. All elements share
// a single polynomial order; triangles and quadrilaterals may be mixed
// in 2D.
type Mesh struct {
	Dim   int
	Order int
	Verts [][3]float64
	Elems []*Element

	NumEdges int
	NumFaces int

	BndEdges []BndEdge
	BndFaces []BndFace

	refs map[basis.Shape]*basis.Ref
}

// edgeKey is a canonical (sorted) vertex pair.
type edgeKey [2]int

func mkEdgeKey(a, b int) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{a, b}
}

// faceKey is a canonical (sorted) vertex quadruple.
type faceKey [4]int

func mkFaceKey(v [4]int) faceKey {
	s := v[:]
	sort.Ints(s)
	return faceKey{s[0], s[1], s[2], s[3]}
}

// New builds a mesh of the given polynomial order from vertex
// coordinates and element specifications. It tabulates element
// geometry and the edge/face connectivity needed for C0 assembly.
func New(order int, verts [][3]float64, specs []ElemSpec) (*Mesh, error) {
	if order < 1 {
		return nil, fmt.Errorf("mesh: order must be >= 1, got %d", order)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("mesh: no elements")
	}
	m := &Mesh{
		Order: order,
		Verts: verts,
		refs:  map[basis.Shape]*basis.Ref{},
	}
	m.Dim = specs[0].Shape.Dim()

	edgeIDs := map[edgeKey]int{}
	type faceRec struct {
		id    int
		canon [4]int
	}
	faceIDs := map[faceKey]faceRec{}
	type edgeUse struct {
		elem, local int
	}
	edgeCount := map[int][]edgeUse{}
	type faceUse struct {
		elem, local int
	}
	faceCount := map[int][]faceUse{}

	for ei, spec := range specs {
		if spec.Shape.Dim() != m.Dim {
			return nil, fmt.Errorf("mesh: mixed dimensions (element %d)", ei)
		}
		ref, ok := m.refs[spec.Shape]
		if !ok {
			ref = basis.NewRef(spec.Shape, order)
			m.refs[spec.Shape] = ref
		}
		if len(spec.Verts) != spec.Shape.NumVerts() {
			return nil, fmt.Errorf("mesh: element %d: %d vertices for %v", ei, len(spec.Verts), spec.Shape)
		}
		coords := make([][3]float64, len(spec.Verts))
		for i, v := range spec.Verts {
			if v < 0 || v >= len(verts) {
				return nil, fmt.Errorf("mesh: element %d references vertex %d out of range", ei, v)
			}
			coords[i] = verts[v]
		}
		el, err := newElement(ei, ref, spec.Verts, coords)
		if err != nil {
			return nil, err
		}

		// Edge connectivity.
		var edgeVerts [][2]int
		switch spec.Shape {
		case basis.Quad:
			edgeVerts = basis.QuadEdgeVerts[:]
		case basis.Tri:
			edgeVerts = basis.TriEdgeVerts[:]
		case basis.Hex:
			edgeVerts = basis.HexEdgeVerts[:]
		}
		el.Edge = make([]int, len(edgeVerts))
		el.EdgeRev = make([]bool, len(edgeVerts))
		for le, ev := range edgeVerts {
			a, b := spec.Verts[ev[0]], spec.Verts[ev[1]]
			if a == b {
				return nil, fmt.Errorf("mesh: element %d has degenerate edge %d", ei, le)
			}
			key := mkEdgeKey(a, b)
			id, ok := edgeIDs[key]
			if !ok {
				id = len(edgeIDs)
				edgeIDs[key] = id
			}
			el.Edge[le] = id
			// Global edge direction: from the smaller to the larger
			// global vertex id.
			el.EdgeRev[le] = a > b
			edgeCount[id] = append(edgeCount[id], edgeUse{ei, le})
		}

		// Face connectivity (3D). The first element to touch a face
		// fixes the canonical corner ordering; later elements record
		// the dihedral transform relating their local face axes to it.
		if spec.Shape == basis.Hex {
			el.Face = make([]int, 6)
			el.FaceOrient = make([]FaceOrient, 6)
			for lf, fv := range basis.HexFaceVerts {
				var gl [4]int
				for i, lv := range fv {
					gl[i] = spec.Verts[lv]
				}
				key := mkFaceKey(gl)
				rec, ok := faceIDs[key]
				if !ok {
					rec = faceRec{id: len(faceIDs), canon: gl}
					faceIDs[key] = rec
				}
				or, err := quadFaceOrientation(rec.canon, gl)
				if err != nil {
					return nil, fmt.Errorf("mesh: element %d face %d: %v", ei, lf, err)
				}
				el.Face[lf] = rec.id
				el.FaceOrient[lf] = or
				faceCount[rec.id] = append(faceCount[rec.id], faceUse{ei, lf})
			}
		}
		m.Elems = append(m.Elems, el)
	}
	m.NumEdges = len(edgeIDs)
	m.NumFaces = len(faceIDs)

	// Boundary entities: edges (2D) / faces (3D) used exactly once.
	if m.Dim == 2 {
		for id, uses := range edgeCount {
			if len(uses) == 1 {
				m.BndEdges = append(m.BndEdges, BndEdge{
					Elem: uses[0].elem, LocalEdge: uses[0].local, Edge: id,
				})
			} else if len(uses) > 2 {
				return nil, fmt.Errorf("mesh: edge %d shared by %d elements", id, len(uses))
			}
		}
		sort.Slice(m.BndEdges, func(i, j int) bool {
			if m.BndEdges[i].Elem != m.BndEdges[j].Elem {
				return m.BndEdges[i].Elem < m.BndEdges[j].Elem
			}
			return m.BndEdges[i].LocalEdge < m.BndEdges[j].LocalEdge
		})
	} else {
		for id, uses := range faceCount {
			if len(uses) == 1 {
				m.BndFaces = append(m.BndFaces, BndFace{
					Elem: uses[0].elem, LocalFace: uses[0].local, Face: id,
				})
			} else if len(uses) > 2 {
				return nil, fmt.Errorf("mesh: face %d shared by %d elements", id, len(uses))
			}
		}
		sort.Slice(m.BndFaces, func(i, j int) bool {
			if m.BndFaces[i].Elem != m.BndFaces[j].Elem {
				return m.BndFaces[i].Elem < m.BndFaces[j].Elem
			}
			return m.BndFaces[i].LocalFace < m.BndFaces[j].LocalFace
		})
	}
	return m, nil
}

// Ref returns the tabulated reference element for a shape present in
// the mesh.
func (m *Mesh) Ref(s basis.Shape) *basis.Ref { return m.refs[s] }

// MoveVertices updates the vertex coordinates and re-tabulates every
// element's geometric factors (Jacobians, metric terms, coordinates),
// keeping connectivity, numbering and orientations intact. This is the
// mesh-update step of the ALE formulation; it fails if the motion
// inverts any element.
func (m *Mesh) MoveVertices(verts [][3]float64) error {
	if len(verts) != len(m.Verts) {
		return fmt.Errorf("mesh: MoveVertices got %d vertices, mesh has %d", len(verts), len(m.Verts))
	}
	newElems := make([]*Element, len(m.Elems))
	for ei, el := range m.Elems {
		coords := make([][3]float64, len(el.Vert))
		for i, v := range el.Vert {
			coords[i] = verts[v]
		}
		ne, err := newElement(ei, el.Ref, el.Vert, coords)
		if err != nil {
			return err
		}
		ne.Edge, ne.EdgeRev, ne.Face, ne.FaceOrient = el.Edge, el.EdgeRev, el.Face, el.FaceOrient
		newElems[ei] = ne
	}
	m.Verts = verts
	m.Elems = newElems
	return nil
}

// TagBoundary assigns boundary tags using a classifier called with the
// midpoint of each boundary edge (2D) or the centroid of each boundary
// face (3D).
func (m *Mesh) TagBoundary(classify func(x, y, z float64) string) {
	if m.Dim == 2 {
		for i := range m.BndEdges {
			be := &m.BndEdges[i]
			el := m.Elems[be.Elem]
			var ev [2]int
			switch el.Ref.Shape {
			case basis.Quad:
				ev = basis.QuadEdgeVerts[be.LocalEdge]
			case basis.Tri:
				ev = basis.TriEdgeVerts[be.LocalEdge]
			}
			a := m.Verts[el.Vert[ev[0]]]
			b := m.Verts[el.Vert[ev[1]]]
			be.Tag = classify(0.5*(a[0]+b[0]), 0.5*(a[1]+b[1]), 0)
		}
		return
	}
	for i := range m.BndFaces {
		bf := &m.BndFaces[i]
		el := m.Elems[bf.Elem]
		fv := basis.HexFaceVerts[bf.LocalFace]
		var cx, cy, cz float64
		for _, lv := range fv {
			v := m.Verts[el.Vert[lv]]
			cx += v[0] / 4
			cy += v[1] / 4
			cz += v[2] / 4
		}
		bf.Tag = classify(cx, cy, cz)
	}
}

// TotalDof returns the number of local (elemental) degrees of freedom
// summed over elements, the "degrees of freedom" count the paper
// quotes for its meshes.
func (m *Mesh) TotalDof() int {
	var n int
	for _, e := range m.Elems {
		n += e.Ref.NModes
	}
	return n
}

// FaceOrient records how an element's local face axes relate to the
// face's canonical axes: Swap exchanges the two tensor indices, and
// Rev1/Rev2 flag a reversed first/second local axis (odd modes along a
// reversed axis flip sign).
type FaceOrient struct {
	Swap, Rev1, Rev2 bool
}

// quadFaceOrientation computes the dihedral transform between an
// element's face corner list and the canonical one. Both lists hold
// the same four global vertex ids.
func quadFaceOrientation(canon, elem [4]int) (FaceOrient, error) {
	// Canonical corner coordinates of a tensor face.
	coords := [4][2]int{{-1, -1}, {1, -1}, {1, 1}, {-1, 1}}
	pos := func(v int) int {
		for i, c := range canon {
			if c == v {
				return i
			}
		}
		return -1
	}
	p0, p1, p3 := pos(elem[0]), pos(elem[1]), pos(elem[3])
	if p0 < 0 || p1 < 0 || p3 < 0 {
		return FaceOrient{}, fmt.Errorf("face vertex lists disagree: %v vs %v", canon, elem)
	}
	// Direction of the element's first/second face axis in canonical
	// coordinates.
	ds := [2]int{(coords[p1][0] - coords[p0][0]) / 2, (coords[p1][1] - coords[p0][1]) / 2}
	dt := [2]int{(coords[p3][0] - coords[p0][0]) / 2, (coords[p3][1] - coords[p0][1]) / 2}
	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	if abs(ds[0])+abs(ds[1]) != 1 || abs(dt[0])+abs(dt[1]) != 1 || ds[0]*dt[0]+ds[1]*dt[1] != 0 {
		return FaceOrient{}, fmt.Errorf("face corner orderings incompatible: %v vs %v", canon, elem)
	}
	var or FaceOrient
	if ds[0] != 0 {
		// Element s-axis along canonical s-axis.
		or.Rev1 = ds[0] < 0
		or.Rev2 = dt[1] < 0
	} else {
		or.Swap = true
		or.Rev1 = ds[1] < 0
		or.Rev2 = dt[0] < 0
	}
	return or, nil
}

// EdgeVertsOf returns the local edge-vertex table for an element.
func EdgeVertsOf(s basis.Shape) [][2]int {
	switch s {
	case basis.Quad:
		return basis.QuadEdgeVerts[:]
	case basis.Tri:
		return basis.TriEdgeVerts[:]
	case basis.Hex:
		return basis.HexEdgeVerts[:]
	}
	return nil
}
