package mesh

import (
	"math"
	"testing"

	"nektar/internal/basis"
)

// traceMesh builds a single skewed quad and a single triangle for edge
// testing.
func traceQuad(t *testing.T, order int) *Mesh {
	t.Helper()
	verts := [][3]float64{{0, 0, 0}, {2, 0.2, 0}, {2.3, 1.9, 0}, {-0.1, 1.6, 0}}
	m, err := New(order, verts, []ElemSpec{{Shape: basis.Quad, Verts: []int{0, 1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func traceTri(t *testing.T, order int) *Mesh {
	t.Helper()
	verts := [][3]float64{{0, 0, 0}, {2, 0.1, 0}, {0.3, 1.7, 0}}
	m, err := New(order, verts, []ElemSpec{{Shape: basis.Tri, Verts: []int{0, 1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEdgeQuadNormalsOutwardAndUnit(t *testing.T) {
	for _, gen := range []func(*testing.T, int) *Mesh{traceQuad, traceTri} {
		m := gen(t, 3)
		el := m.Elems[0]
		// Element centroid.
		var cx, cy, area float64
		for q := 0; q < el.Ref.NQuad; q++ {
			cx += el.X[0][q] * el.WJ[q]
			cy += el.X[1][q] * el.WJ[q]
			area += el.WJ[q]
		}
		cx /= area
		cy /= area
		for le := 0; le < el.Ref.Shape.NumEdges(); le++ {
			eq := NewEdgeQuad(m, el, le, 0)
			if math.Abs(eq.Nx*eq.Nx+eq.Ny*eq.Ny-1) > 1e-12 {
				t.Fatalf("edge %d: normal not unit", le)
			}
			// Outward: normal points away from the centroid.
			mx, my := 0.0, 0.0
			for qi := range eq.X {
				mx += eq.X[qi] / float64(len(eq.X))
				my += eq.Y[qi] / float64(len(eq.Y))
			}
			if (mx-cx)*eq.Nx+(my-cy)*eq.Ny <= 0 {
				t.Fatalf("%v edge %d: normal points inward", el.Ref.Shape, le)
			}
		}
	}
}

func TestEdgeQuadIntegratesLength(t *testing.T) {
	m := traceQuad(t, 4)
	el := m.Elems[0]
	// Edge 0 runs from vertex 0 to vertex 1.
	eq := NewEdgeQuad(m, el, 0, 0)
	ones := make([]float64, len(eq.Points1D))
	for i := range ones {
		ones[i] = 1
	}
	want := math.Hypot(2-0, 0.2-0)
	if got := eq.Integrate(ones); math.Abs(got-want) > 1e-12 {
		t.Fatalf("edge length %v, want %v", got, want)
	}
}

func TestEdgeEvalPhysMatchesModalEval(t *testing.T) {
	// The quadrature-trace shortcut must agree with evaluating the
	// modal expansion on the edge, for any field in the space.
	for _, gen := range []func(*testing.T, int) *Mesh{traceQuad, traceTri} {
		m := gen(t, 5)
		el := m.Elems[0]
		// A smooth polynomial field projected into the element space.
		phys := make([]float64, el.Ref.NQuad)
		for q := range phys {
			x, y := el.X[0][q], el.X[1][q]
			phys[q] = 1 + x - 2*y + x*y + x*x - y*y*x
		}
		coef := make([]float64, el.Ref.NModes)
		el.FwdTrans(phys, coef)
		back := make([]float64, el.Ref.NQuad)
		el.BwdTrans(coef, back)
		for le := 0; le < el.Ref.Shape.NumEdges(); le++ {
			eq := NewEdgeQuad(m, el, le, 0)
			q1 := len(eq.Points1D)
			viaModal := make([]float64, q1)
			eq.Eval(coef, viaModal)
			viaPhys := make([]float64, q1)
			eq.EvalPhys(back, viaPhys)
			for qi := 0; qi < q1; qi++ {
				if math.Abs(viaModal[qi]-viaPhys[qi]) > 1e-10 {
					t.Fatalf("%v edge %d point %d: modal %v vs phys %v",
						el.Ref.Shape, le, qi, viaModal[qi], viaPhys[qi])
				}
			}
		}
	}
}

func TestAccumulateFluxConstant(t *testing.T) {
	// integral over an edge of 1 * phi_m summed over vertex modes of
	// that edge equals the edge length (partition of unity on the
	// edge trace).
	m := traceQuad(t, 4)
	el := m.Elems[0]
	eq := NewEdgeQuad(m, el, 1, 0) // right edge, v1 -> v2
	g := make([]float64, len(eq.Points1D))
	for i := range g {
		g[i] = 1
	}
	out := make([]float64, el.Ref.NModes)
	eq.AccumulateFlux(g, out)
	var sum float64
	for mi := range out {
		sum += out[mi] // sum over ALL modes of int phi_m = int 1 (PoU)
	}
	// Sum over all modes of int_e phi_m is int_e sum_m phi_m, and the
	// vertex modes alone sum to 1 on the edge while edge/interior
	// modes integrate to something finite; instead check against the
	// directly computed integral of the vertex+edge trace: use the
	// two vertex modes of this edge.
	var vsum float64
	for mi, mo := range el.Ref.Modes {
		if mo.Type == basis.VertexMode && (mo.Entity == 1 || mo.Entity == 2) {
			vsum += out[mi]
		}
	}
	v1 := m.Verts[el.Vert[1]]
	v2 := m.Verts[el.Vert[2]]
	want := math.Hypot(v2[0]-v1[0], v2[1]-v1[1])
	if math.Abs(vsum-want) > 1e-10 {
		t.Fatalf("vertex-mode flux sum %v, want edge length %v (total %v)", vsum, want, sum)
	}
}

func TestMoveVerticesRebuildsGeometry(t *testing.T) {
	m := traceQuad(t, 3)
	area0 := m.Elems[0].Area()
	verts := make([][3]float64, len(m.Verts))
	copy(verts, m.Verts)
	// Uniform scaling by 2 quadruples the area.
	for i := range verts {
		verts[i][0] *= 2
		verts[i][1] *= 2
	}
	if err := m.MoveVertices(verts); err != nil {
		t.Fatal(err)
	}
	if a := m.Elems[0].Area(); math.Abs(a-4*area0) > 1e-10 {
		t.Fatalf("area after scaling %v, want %v", a, 4*area0)
	}
	// Inverting motion must be rejected.
	bad := make([][3]float64, len(verts))
	copy(bad, verts)
	bad[0], bad[1] = verts[1], verts[0]
	bad[2], bad[3] = verts[3], verts[2]
	if err := m.MoveVertices(bad); err == nil {
		t.Fatal("inverted element accepted")
	}
}

func TestMoveVerticesLengthMismatch(t *testing.T) {
	m := traceQuad(t, 2)
	if err := m.MoveVertices(make([][3]float64, 1)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestFaceQuadUnitCube(t *testing.T) {
	m, err := BoxHex(3, 1, 1, 1, 0, 1, 0, 1, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	el := m.Elems[0]
	wantN := [6][3]float64{
		{0, 0, -1}, {0, 0, 1}, {0, -1, 0}, {0, 1, 0}, {-1, 0, 0}, {1, 0, 0},
	}
	for lf := 0; lf < 6; lf++ {
		fq := NewFaceQuad(m, el, lf)
		if a := fq.Area(); math.Abs(a-1) > 1e-12 {
			t.Fatalf("face %d area %v, want 1", lf, a)
		}
		for i := range fq.Src {
			if math.Abs(fq.Nx[i]-wantN[lf][0]) > 1e-12 ||
				math.Abs(fq.Ny[i]-wantN[lf][1]) > 1e-12 ||
				math.Abs(fq.Nz[i]-wantN[lf][2]) > 1e-12 {
				t.Fatalf("face %d normal (%v,%v,%v), want %v",
					lf, fq.Nx[i], fq.Ny[i], fq.Nz[i], wantN[lf])
			}
		}
	}
}

func TestFaceQuadDivergenceTheoremOnSkewedHex(t *testing.T) {
	// For any closed element, the integral of the outward normal over
	// the boundary vanishes, and int div(F) dV = surface int F.n dS
	// for a linear field F = (x, 0, 0) (div F = 1 => volume).
	verts := [][3]float64{
		{0, 0, 0}, {1.2, 0.1, -0.05}, {1.3, 1.1, 0.1}, {-0.1, 0.9, 0.05},
		{0.05, -0.1, 1.0}, {1.25, 0.0, 1.1}, {1.4, 1.2, 1.25}, {0.0, 1.0, 1.05},
	}
	m, err := New(4, verts, []ElemSpec{{Shape: basis.Hex, Verts: []int{0, 1, 2, 3, 4, 5, 6, 7}}})
	if err != nil {
		t.Fatal(err)
	}
	el := m.Elems[0]
	var nxSum, nySum, nzSum, flux float64
	for lf := 0; lf < 6; lf++ {
		fq := NewFaceQuad(m, el, lf)
		np := len(fq.Src)
		gx := make([]float64, np)
		gy := make([]float64, np)
		gz := make([]float64, np)
		fx := make([]float64, np)
		for i, s := range fq.Src {
			gx[i] = fq.Nx[i]
			gy[i] = fq.Ny[i]
			gz[i] = fq.Nz[i]
			fx[i] = el.X[0][s] * fq.Nx[i] // F.n with F = (x,0,0)
		}
		nxSum += fq.Integrate(gx)
		nySum += fq.Integrate(gy)
		nzSum += fq.Integrate(gz)
		flux += fq.Integrate(fx)
	}
	if math.Abs(nxSum) > 1e-10 || math.Abs(nySum) > 1e-10 || math.Abs(nzSum) > 1e-10 {
		t.Fatalf("closed-surface normal integral (%v, %v, %v), want 0", nxSum, nySum, nzSum)
	}
	if vol := el.Area(); math.Abs(flux-vol) > 1e-10 {
		t.Fatalf("divergence theorem: flux %v vs volume %v", flux, vol)
	}
}
