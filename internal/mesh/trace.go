package mesh

import (
	"math"

	"nektar/internal/basis"
	"nektar/internal/jacobi"
)

// EdgeQuad is the tabulated quadrature of one element edge: basis
// values at the edge's 1D quadrature points plus the (constant, since
// elements are straight-sided) outward normal and surface Jacobian.
// It supports the boundary integrals of the pressure boundary
// condition in the splitting scheme and the drag/lift force
// evaluation.
type EdgeQuad struct {
	Elem      *Element
	LocalEdge int

	// Points1D are the 1D rule points s in [-1, 1] along the local
	// edge direction.
	Points1D []float64
	Weights  []float64

	// B[m*len(Points1D)+q] is basis mode m at edge point q.
	B []float64

	// X, Y are the physical coordinates of the edge points.
	X, Y []float64

	// Nx, Ny is the outward unit normal; SJ the surface Jacobian
	// (|dx/ds|), both constant along a straight edge.
	Nx, Ny, SJ float64

	// Quadrature-trace plan: the element quadrature points lying on
	// this edge (src) and the 1D interpolation from them to the edge
	// rule points (interp, row-major len(Points1D) x len(src)).
	src    []int
	interp []float64
}

// ccwSign indicates whether the local edge direction agrees (+1) or
// disagrees (-1) with counter-clockwise traversal of the element
// boundary; the outward normal is sign * (ty, -tx).
func ccwSign(shape basis.Shape, le int) float64 {
	switch shape {
	case basis.Quad:
		if le == 2 || le == 3 {
			return -1
		}
	case basis.Tri:
		if le == 2 {
			return -1
		}
	}
	return 1
}

// edgeXi maps an edge parameter s to reference coordinates.
func edgeXi(shape basis.Shape, le int, s float64) (xi1, xi2 float64) {
	switch shape {
	case basis.Quad:
		switch le {
		case 0:
			return s, -1
		case 1:
			return 1, s
		case 2:
			return s, 1
		default:
			return -1, s
		}
	case basis.Tri:
		switch le {
		case 0:
			return s, -1
		case 1:
			return -s, s
		default:
			return -1, s
		}
	}
	panic("mesh: edge trace only supported in 2D")
}

// NewEdgeQuad tabulates an element edge with a q-point Gauss-Legendre
// rule (q defaults to order+2 when q <= 0).
func NewEdgeQuad(m *Mesh, el *Element, le int, q int) *EdgeQuad {
	if q <= 0 {
		q = el.Ref.P + 2
	}
	rule := jacobi.NewRule(jacobi.Gauss, q, 0, 0)
	eq := &EdgeQuad{
		Elem:      el,
		LocalEdge: le,
		Points1D:  rule.Points,
		Weights:   rule.Weight,
	}
	// Straight edge geometry from the endpoint vertices.
	ev := EdgeVertsOf(el.Ref.Shape)[le]
	a := m.Verts[el.Vert[ev[0]]]
	b := m.Verts[el.Vert[ev[1]]]
	tx, ty := 0.5*(b[0]-a[0]), 0.5*(b[1]-a[1]) // dx/ds
	eq.SJ = math.Hypot(tx, ty)
	sgn := ccwSign(el.Ref.Shape, le)
	eq.Nx = sgn * ty / eq.SJ
	eq.Ny = -sgn * tx / eq.SJ

	n := el.Ref.NModes
	eq.B = make([]float64, n*q)
	eq.X = make([]float64, q)
	eq.Y = make([]float64, q)
	for qi, s := range rule.Points {
		eq.X[qi] = 0.5*(1-s)*a[0] + 0.5*(1+s)*b[0]
		eq.Y[qi] = 0.5*(1-s)*a[1] + 0.5*(1+s)*b[1]
		xi1, xi2 := edgeXi(el.Ref.Shape, le, s)
		for mi := range el.Ref.Modes {
			eq.B[mi*q+qi] = evalRefMode(el.Ref, mi, xi1, xi2)
		}
	}
	eq.buildQuadTrace()
	return eq
}

// buildQuadTrace precomputes the extraction of the edge trace from
// element quadrature values: every 2D element edge lies on a tensor
// grid line of the quadrature rule, so the trace is the 1D
// interpolation of the matching row or column of points.
func (eq *EdgeQuad) buildQuadTrace() {
	ref := eq.Elem.Ref
	q1, q2 := ref.QDim[0], ref.QDim[1]
	var param []float64
	switch ref.Shape {
	case basis.Quad:
		switch eq.LocalEdge {
		case 0: // xi2 = -1: j = 0, vary i
			param = ref.Pts[0]
			for i := 0; i < q1; i++ {
				eq.src = append(eq.src, i*q2)
			}
		case 1: // xi1 = +1: i = q1-1, vary j
			param = ref.Pts[1]
			for j := 0; j < q2; j++ {
				eq.src = append(eq.src, (q1-1)*q2+j)
			}
		case 2: // xi2 = +1
			param = ref.Pts[0]
			for i := 0; i < q1; i++ {
				eq.src = append(eq.src, i*q2+q2-1)
			}
		default: // xi1 = -1
			param = ref.Pts[1]
			for j := 0; j < q2; j++ {
				eq.src = append(eq.src, j)
			}
		}
	case basis.Tri:
		// Collapsed coordinates: eta1 is Lobatto (includes +-1), eta2
		// is Gauss-Radau (includes -1 only).
		switch eq.LocalEdge {
		case 0: // xi2 = eta2 = -1: j = 0, param = eta1 = xi1
			param = ref.Pts[0]
			for i := 0; i < q1; i++ {
				eq.src = append(eq.src, i*q2)
			}
		case 1: // hypotenuse: eta1 = +1, param s = xi2 = eta2
			param = ref.Pts[1]
			for j := 0; j < q2; j++ {
				eq.src = append(eq.src, (q1-1)*q2+j)
			}
		default: // xi1 = -1: eta1 = -1, param = xi2 = eta2
			param = ref.Pts[1]
			for j := 0; j < q2; j++ {
				eq.src = append(eq.src, j)
			}
		}
	default:
		return // 3D traces are not needed by the 2D solvers
	}
	eq.interp = jacobi.InterpMatrix(param, eq.Points1D)
}

// EvalPhys computes the edge trace of a field given at the element's
// quadrature points (no modal projection needed).
func (eq *EdgeQuad) EvalPhys(phys []float64, out []float64) {
	np := len(eq.src)
	for qi := range eq.Points1D {
		var v float64
		row := eq.interp[qi*np : (qi+1)*np]
		for k, si := range eq.src {
			v += row[k] * phys[si]
		}
		out[qi] = v
	}
}

// evalRefMode evaluates one 2D basis mode at reference coordinates.
func evalRefMode(ref *basis.Ref, mi int, xi1, xi2 float64) float64 {
	m := ref.Modes[mi]
	switch ref.Shape {
	case basis.Quad:
		return basis.ModifiedA(m.P, xi1) * basis.ModifiedA(m.Q, xi2)
	case basis.Tri:
		if m.P == 0 && m.Q == 1 {
			return 0.5 * (1 + xi2)
		}
		var eta1 float64
		if xi2 == 1 {
			eta1 = -1
		} else {
			eta1 = 2*(1+xi1)/(1-xi2) - 1
		}
		return basis.ModifiedA(m.P, eta1) * basis.ModifiedB(m.P, m.Q, xi2)
	}
	panic("mesh: evalRefMode supports 2D shapes only")
}

// Eval computes the trace of a modal coefficient vector at the edge
// quadrature points.
func (eq *EdgeQuad) Eval(coef []float64, out []float64) {
	q := len(eq.Points1D)
	for qi := 0; qi < q; qi++ {
		var v float64
		for mi := range coef {
			v += eq.B[mi*q+qi] * coef[mi]
		}
		out[qi] = v
	}
}

// AccumulateFlux adds the surface integral of g * phi_m along the edge
// into the elemental vector out: out[m] += sum_q w_q SJ g(q) B[m][q].
func (eq *EdgeQuad) AccumulateFlux(g []float64, out []float64) {
	q := len(eq.Points1D)
	for mi := range out {
		var s float64
		for qi := 0; qi < q; qi++ {
			s += eq.Weights[qi] * g[qi] * eq.B[mi*q+qi]
		}
		out[mi] += s * eq.SJ
	}
}

// Integrate computes the surface integral of g over the edge.
func (eq *EdgeQuad) Integrate(g []float64) float64 {
	var s float64
	for qi := range eq.Points1D {
		s += eq.Weights[qi] * g[qi]
	}
	return s * eq.SJ
}
