package mesh

import (
	"math"

	"nektar/internal/basis"
	"nektar/internal/jacobi"
)

// FaceQuad is the tabulated quadrature of one hexahedral element face:
// the element quadrature points lying on the face, the outward unit
// normal and surface Jacobian at each of them. Since the face plane
// xi_d = +-1 belongs to the Lobatto grid, field traces come directly
// from element quadrature values. It supports the 3D force
// integration on the flapping wing and any other surface functional.
type FaceQuad struct {
	Elem      *Element
	LocalFace int

	Src []int     // element quad-point indices on the face
	W   []float64 // 2D reference quadrature weights

	Nx, Ny, Nz []float64 // outward unit normal per face point
	SJ         []float64 // surface Jacobian per face point
}

// hexFaceAxis maps a local hex face to its fixed parametric direction
// and side (-1 or +1), per the basis package's face numbering.
func hexFaceAxis(lf int) (dir int, side float64) {
	switch lf {
	case 0:
		return 2, -1
	case 1:
		return 2, 1
	case 2:
		return 1, -1
	case 3:
		return 1, 1
	case 4:
		return 0, -1
	default:
		return 0, 1
	}
}

// NewFaceQuad tabulates a hex face. The normal comes from the gradient
// of the fixed parametric coordinate (grad xi_d is perpendicular to
// the level set xi_d = const) and the surface Jacobian from the
// coarea formula dS = |grad xi_d| * detJ * dxi_a dxi_b.
func NewFaceQuad(m *Mesh, el *Element, lf int) *FaceQuad {
	if el.Ref.Shape != basis.Hex {
		panic("mesh: NewFaceQuad supports hexahedra only")
	}
	dir, side := hexFaceAxis(lf)
	q := el.Ref.QDim
	rule := jacobi.NewRule(jacobi.Lobatto, q[0], 0, 0) // all dirs share the rule
	fixIdx := 0
	if side > 0 {
		fixIdx = q[dir] - 1
	}
	fq := &FaceQuad{Elem: el, LocalFace: lf}
	// Free directions in increasing axis order.
	var free [2]int
	switch dir {
	case 0:
		free = [2]int{1, 2}
	case 1:
		free = [2]int{0, 2}
	default:
		free = [2]int{0, 1}
	}
	idx3 := func(i, j, k int) int { return (i*q[1]+j)*q[2] + k }
	for a := 0; a < q[free[0]]; a++ {
		for b := 0; b < q[free[1]]; b++ {
			var ijk [3]int
			ijk[dir] = fixIdx
			ijk[free[0]] = a
			ijk[free[1]] = b
			qi := idx3(ijk[0], ijk[1], ijk[2])
			fq.Src = append(fq.Src, qi)
			fq.W = append(fq.W, rule.Weight[a]*rule.Weight[b])

			gx := el.DxiDx[dir][0][qi]
			gy := el.DxiDx[dir][1][qi]
			gz := el.DxiDx[dir][2][qi]
			norm := math.Sqrt(gx*gx + gy*gy + gz*gz)
			fq.Nx = append(fq.Nx, side*gx/norm)
			fq.Ny = append(fq.Ny, side*gy/norm)
			fq.Nz = append(fq.Nz, side*gz/norm)
			fq.SJ = append(fq.SJ, norm*el.Jac[qi])
		}
	}
	return fq
}

// EvalPhys extracts the face trace of a field given at the element's
// quadrature points.
func (fq *FaceQuad) EvalPhys(phys []float64, out []float64) {
	for i, s := range fq.Src {
		out[i] = phys[s]
	}
}

// Integrate computes the surface integral of g (given at the face
// points) over the face.
func (fq *FaceQuad) Integrate(g []float64) float64 {
	var sum float64
	for i := range fq.Src {
		sum += fq.W[i] * fq.SJ[i] * g[i]
	}
	return sum
}

// Area returns the face area.
func (fq *FaceQuad) Area() float64 {
	ones := make([]float64, len(fq.Src))
	for i := range ones {
		ones[i] = 1
	}
	return fq.Integrate(ones)
}
