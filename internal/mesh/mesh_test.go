package mesh

import (
	"math"
	"testing"

	"nektar/internal/basis"
)

func TestRectQuadBasics(t *testing.T) {
	m, err := RectQuad(4, 3, 2, 0, 3, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Elems) != 6 {
		t.Fatalf("elements = %d, want 6", len(m.Elems))
	}
	if len(m.Verts) != 12 {
		t.Fatalf("verts = %d, want 12", len(m.Verts))
	}
	// Edges: 3*3 horizontal rows + 4*2 vertical columns = 9+8 = 17.
	if m.NumEdges != 17 {
		t.Fatalf("edges = %d, want 17", m.NumEdges)
	}
	// Boundary edges: perimeter = 2*(3+2) = 10.
	if len(m.BndEdges) != 10 {
		t.Fatalf("boundary edges = %d, want 10", len(m.BndEdges))
	}
	// Total area = 6 unit squares.
	var area float64
	for _, e := range m.Elems {
		area += e.Area()
	}
	if math.Abs(area-6) > 1e-12 {
		t.Fatalf("area = %v, want 6", area)
	}
}

func TestRectTriBasics(t *testing.T) {
	m, err := RectTri(3, 2, 2, 0, 1, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Elems) != 8 {
		t.Fatalf("elements = %d, want 8", len(m.Elems))
	}
	var area float64
	for _, e := range m.Elems {
		area += e.Area()
	}
	if math.Abs(area-1) > 1e-12 {
		t.Fatalf("area = %v, want 1", area)
	}
}

func TestElementGradient(t *testing.T) {
	// On a skewed quad, the physical gradient of a projected linear
	// function must be exact.
	verts := [][3]float64{{0, 0, 0}, {2, 0.3, 0}, {2.4, 1.8, 0}, {-0.2, 1.5, 0}}
	m, err := New(5, verts, []ElemSpec{{Shape: basis.Quad, Verts: []int{0, 1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	e := m.Elems[0]
	nq := e.Ref.NQuad
	phys := make([]float64, nq)
	for q := 0; q < nq; q++ {
		phys[q] = 2*e.X[0][q] - 3*e.X[1][q] + 1
	}
	coef := make([]float64, e.Ref.NModes)
	e.FwdTrans(phys, coef)
	grad := [][]float64{make([]float64, nq), make([]float64, nq)}
	e.PhysGrad(coef, grad)
	for q := 0; q < nq; q++ {
		if math.Abs(grad[0][q]-2) > 1e-9 || math.Abs(grad[1][q]+3) > 1e-9 {
			t.Fatalf("grad at q=%d = (%v, %v), want (2, -3)", q, grad[0][q], grad[1][q])
		}
	}
}

func TestTriElementAreaAndIntegral(t *testing.T) {
	verts := [][3]float64{{0, 0, 0}, {3, 0, 0}, {0, 4, 0}}
	m, err := New(4, verts, []ElemSpec{{Shape: basis.Tri, Verts: []int{0, 1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	e := m.Elems[0]
	if math.Abs(e.Area()-6) > 1e-12 {
		t.Fatalf("area = %v, want 6", e.Area())
	}
	// integral of x over the triangle (0,0)-(3,0)-(0,4) = area * xbar = 6 * 1 = 6.
	phys := make([]float64, e.Ref.NQuad)
	copy(phys, e.X[0])
	if got := e.Integral(phys); math.Abs(got-6) > 1e-11 {
		t.Fatalf("integral x = %v, want 6", got)
	}
}

func TestNonPositiveJacobianRejected(t *testing.T) {
	// Clockwise quad has negative Jacobian.
	verts := [][3]float64{{0, 0, 0}, {0, 1, 0}, {1, 1, 0}, {1, 0, 0}}
	if _, err := New(2, verts, []ElemSpec{{Shape: basis.Quad, Verts: []int{0, 1, 2, 3}}}); err == nil {
		t.Fatal("expected Jacobian error for clockwise element")
	}
}

func TestAssemblyContinuity(t *testing.T) {
	// A global modal vector scattered to two adjacent elements must
	// produce identical traces along the shared edge. Verify using a
	// smooth global function projected elementwise then averaged via
	// gather; the hallmark of a correct orientation/sign convention is
	// exact C0 agreement of the two elemental traces.
	for _, gen := range []func() (*Mesh, error){
		func() (*Mesh, error) { return RectQuad(5, 2, 1, 0, 2, 0, 1, nil) },
		func() (*Mesh, error) { return RectTri(5, 2, 1, 0, 2, 0, 1, nil) },
	} {
		m, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		a := NewAssembly(m, nil)
		// Project f globally: gather elemental IProduct, then solve via
		// Jacobi-free approach is heavy; instead scatter a random global
		// vector and check trace continuity pointwise.
		global := make([]float64, a.NGlobal)
		for i := range global {
			global[i] = math.Sin(float64(3*i + 1)) // deterministic pseudo-random
		}
		traces := map[[2]int][]float64{} // (edge, sampleIdx) -> values per element
		samples := []float64{-0.77, -0.21, 0.4, 0.93}
		for ei, el := range m.Elems {
			local := make([]float64, el.Ref.NModes)
			a.Scatter(ei, global, local)
			for le, edge := range el.Edge {
				vals := make([]float64, len(samples))
				for si, s := range samples {
					// Edge parameter in global direction.
					sl := s
					if el.EdgeRev[le] {
						sl = -s
					}
					vals[si] = evalTrace(el, local, le, sl)
				}
				key := [2]int{edge, 0}
				if prev, ok := traces[key]; ok {
					for si := range samples {
						if math.Abs(prev[si]-vals[si]) > 1e-9 {
							t.Fatalf("edge %d trace mismatch at sample %d: %v vs %v", edge, si, prev[si], vals[si])
						}
					}
				} else {
					traces[key] = vals
				}
			}
		}
	}
}

// evalTrace evaluates the elemental expansion at parameter s along
// local edge le (s in the local edge direction).
func evalTrace(el *Element, coef []float64, le int, s float64) float64 {
	// Map edge parameter to reference coordinates.
	var xi1, xi2 float64
	switch el.Ref.Shape {
	case basis.Quad:
		switch le {
		case 0:
			xi1, xi2 = s, -1
		case 1:
			xi1, xi2 = 1, s
		case 2:
			xi1, xi2 = s, 1
		case 3:
			xi1, xi2 = -1, s
		}
	case basis.Tri:
		switch le {
		case 0:
			xi1, xi2 = s, -1
		case 1:
			xi1, xi2 = -s, s
		case 2:
			xi1, xi2 = -1, s
		}
	}
	var v float64
	for mi, mo := range el.Ref.Modes {
		v += coef[mi] * evalMode2D(el.Ref, mo, xi1, xi2)
	}
	return v
}

func evalMode2D(ref *basis.Ref, m basis.Mode, xi1, xi2 float64) float64 {
	switch ref.Shape {
	case basis.Quad:
		return basis.ModifiedA(m.P, xi1) * basis.ModifiedA(m.Q, xi2)
	case basis.Tri:
		if m.P == 0 && m.Q == 1 {
			return 0.5 * (1 + xi2)
		}
		var eta1 float64
		if xi2 == 1 {
			eta1 = -1
		} else {
			eta1 = 2*(1+xi1)/(1-xi2) - 1
		}
		return basis.ModifiedA(m.P, eta1) * basis.ModifiedB(m.P, m.Q, xi2)
	}
	panic("unsupported")
}

func TestAssemblyDofCounts(t *testing.T) {
	p := 4
	m, err := RectQuad(p, 3, 3, 0, 1, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAssembly(m, nil)
	nv := 16
	ne := 24 // 4*3 horizontal per row * ... = 3*4+4*3 = 24
	nint := 9 * (p - 1) * (p - 1)
	want := nv + ne*(p-1) + nint
	if a.NGlobal != want {
		t.Fatalf("NGlobal = %d, want %d", a.NGlobal, want)
	}
	if a.NSolve != a.NGlobal {
		t.Fatalf("no Dirichlet: NSolve = %d, want %d", a.NSolve, a.NGlobal)
	}
}

func TestAssemblyDirichletOrdering(t *testing.T) {
	m, err := RectQuad(3, 4, 4, 0, 1, 0, 1, func(x, y, z float64) string { return "wall" })
	if err != nil {
		t.Fatal(err)
	}
	a := NewAssembly(m, func(tag string) bool { return tag == "wall" })
	if a.NSolve >= a.NGlobal {
		t.Fatal("Dirichlet dofs not excluded from NSolve")
	}
	// Every boundary vertex/edge dof must be numbered >= NSolve.
	for _, be := range m.BndEdges {
		el := m.Elems[be.Elem]
		ev := EdgeVertsOf(el.Ref.Shape)[be.LocalEdge]
		for _, lv := range ev {
			if d := a.VertDof[el.Vert[lv]]; d < a.NSolve {
				t.Fatalf("boundary vertex dof %d < NSolve %d", d, a.NSolve)
			}
		}
		for _, d := range a.EdgeDof[be.Edge] {
			if d < a.NSolve {
				t.Fatalf("boundary edge dof %d < NSolve %d", d, a.NSolve)
			}
		}
	}
}

func TestBandwidthReasonable(t *testing.T) {
	// RCM ordering on a structured strip should produce a bandwidth
	// far below NSolve.
	m, err := RectQuad(3, 10, 2, 0, 10, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAssembly(m, nil)
	kd := a.Bandwidth()
	if kd <= 0 || kd > a.NSolve/2 {
		t.Fatalf("bandwidth %d of %d dofs looks wrong", kd, a.NSolve)
	}
}

func TestGatherScatterAdjoint(t *testing.T) {
	// <Scatter(g), l> == <g, Gather(l)> for all elements (with signs).
	m, err := RectTri(4, 2, 2, 0, 1, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAssembly(m, nil)
	for ei, el := range m.Elems {
		n := el.Ref.NModes
		local := make([]float64, n)
		for i := range local {
			local[i] = float64(i%5) - 2
		}
		global := make([]float64, a.NGlobal)
		for i := range global {
			global[i] = math.Cos(float64(i))
		}
		sc := make([]float64, n)
		a.Scatter(ei, global, sc)
		var lhs float64
		for i := range sc {
			lhs += sc[i] * local[i]
		}
		acc := make([]float64, a.NGlobal)
		a.Gather(ei, local, acc)
		var rhs float64
		for i := range acc {
			rhs += acc[i] * global[i]
		}
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Fatalf("elem %d: adjoint identity violated: %v vs %v", ei, lhs, rhs)
		}
	}
}

func TestBluffBodyMesh(t *testing.T) {
	m, err := BluffBody(3, 24, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Elems) != 24*8 {
		t.Fatalf("elements = %d", len(m.Elems))
	}
	tags := map[string]int{}
	for _, be := range m.BndEdges {
		tags[be.Tag]++
	}
	if tags["wall"] != 24 {
		t.Fatalf("wall edges = %d, want 24", tags["wall"])
	}
	if tags["inflow"] == 0 || tags["outflow"] == 0 || tags["side"] == 0 {
		t.Fatalf("missing outer tags: %v", tags)
	}
	// Area = rectangle minus cylinder, approached from below as the
	// angular resolution refines (inscribed polygon).
	area := func(m *Mesh) float64 {
		var a float64
		for _, e := range m.Elems {
			a += e.Area()
		}
		return a
	}
	want := 40.0*18.0 - math.Pi*0.25
	coarse := area(m)
	if coarse > want || coarse < 0.9*want {
		t.Fatalf("coarse area = %v, want slightly below %v", coarse, want)
	}
	fine, err := BluffBody(3, 96, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fa := area(fine); math.Abs(fa-want) >= math.Abs(coarse-want) || math.Abs(fa-want) > 0.02*want {
		t.Fatalf("area not converging: coarse %v, fine %v, want %v", coarse, fa, want)
	}
}

func TestWingSectionMesh(t *testing.T) {
	m, err := WingSection(2, 32, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Elems) != 32*6 {
		t.Fatalf("elements = %d", len(m.Elems))
	}
	walls := 0
	for _, be := range m.BndEdges {
		if be.Tag == "wall" {
			walls++
		}
	}
	if walls != 32 {
		t.Fatalf("wall edges = %d, want 32", walls)
	}
}

func TestBoxHex(t *testing.T) {
	m, err := BoxHex(2, 2, 2, 2, 0, 1, 0, 1, 0, 1, func(x, y, z float64) string { return "wall" })
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Elems) != 8 {
		t.Fatalf("elements = %d", len(m.Elems))
	}
	if len(m.BndFaces) != 24 {
		t.Fatalf("boundary faces = %d, want 24", len(m.BndFaces))
	}
	var vol float64
	for _, e := range m.Elems {
		vol += e.Area()
	}
	if math.Abs(vol-1) > 1e-12 {
		t.Fatalf("volume = %v, want 1", vol)
	}
	// Interior faces: 3 directions * 4 faces each... total faces =
	// 36; boundary 24, interior 12... check counts:
	if m.NumFaces != 36 {
		t.Fatalf("faces = %d, want 36", m.NumFaces)
	}
}

func TestExtrudeQuads(t *testing.T) {
	m2, err := RectQuad(2, 2, 2, 0, 1, 0, 1, func(x, y, z float64) string { return "side2d" })
	if err != nil {
		t.Fatal(err)
	}
	m3, err := ExtrudeQuads(m2, 2, 3, 0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(m3.Elems) != 12 {
		t.Fatalf("elements = %d, want 12", len(m3.Elems))
	}
	var vol float64
	for _, e := range m3.Elems {
		vol += e.Area()
	}
	if math.Abs(vol-1.5) > 1e-12 {
		t.Fatalf("volume = %v", vol)
	}
	tags := map[string]int{}
	for _, bf := range m3.BndFaces {
		tags[bf.Tag]++
	}
	if tags["side2d"] != 8*3 {
		t.Fatalf("lateral faces = %d, want 24 (tags %v)", tags["side2d"], tags)
	}
	if tags["zlow"] != 4 || tags["zhigh"] != 4 {
		t.Fatalf("z faces: %v", tags)
	}
}

func Test3DAssemblyContinuityViaFaceOrientation(t *testing.T) {
	// Two stacked hexes and two side-by-side hexes exercise the face
	// orientation logic; gather/scatter round trip must conserve the
	// adjoint identity and the global dof count must match theory.
	p := 3
	m, err := BoxHex(p, 2, 1, 2, 0, 2, 0, 1, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAssembly(m, nil)
	nv := 3 * 2 * 3
	nEdge := m.NumEdges
	nFace := m.NumFaces
	want := nv + nEdge*(p-1) + nFace*(p-1)*(p-1) + 4*(p-1)*(p-1)*(p-1)
	if a.NGlobal != want {
		t.Fatalf("NGlobal = %d, want %d", a.NGlobal, want)
	}
	// Continuity: scatter a random global vector to two elements and
	// compare the physical values along their shared face by
	// evaluating both expansions at matching quadrature points. We
	// check continuity indirectly: assemble elemental mass-weighted
	// averages — if signs/orientations were wrong, the global
	// Laplacian would lose symmetry; cheap proxy: the adjoint identity.
	global := make([]float64, a.NGlobal)
	for i := range global {
		global[i] = math.Sin(float64(2*i + 1))
	}
	for ei, el := range m.Elems {
		n := el.Ref.NModes
		local := make([]float64, n)
		a.Scatter(ei, global, local)
		back := make([]float64, a.NGlobal)
		a.Gather(ei, local, back)
		var dot, dot2 float64
		for i := range back {
			dot += back[i] * global[i]
		}
		for i := range local {
			dot2 += local[i] * local[i]
		}
		if math.Abs(dot-dot2) > 1e-9 {
			t.Fatalf("elem %d: scatter/gather inconsistent: %v vs %v", ei, dot, dot2)
		}
	}
}

func TestTotalDof(t *testing.T) {
	m, err := RectQuad(4, 2, 2, 0, 1, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TotalDof(); got != 4*25 {
		t.Fatalf("TotalDof = %d, want 100", got)
	}
}

func TestNACA4Profile(t *testing.T) {
	naca := NACA4(0.04, 0.4, 0.20)
	// Leading edge at u=0.5 should be near origin; trailing edge at
	// u=0 near (1, 0).
	x, y := naca(0)
	if math.Abs(x-1) > 1e-6 || math.Abs(y) > 1e-6 {
		t.Fatalf("TE = (%v, %v)", x, y)
	}
	x, _ = naca(0.5)
	if math.Abs(x) > 1e-6 {
		t.Fatalf("LE x = %v", x)
	}
	// Max thickness ~20% chord: upper minus lower at x ~ 0.3.
	xu, yu := naca(0.30)
	_, yl := naca(0.70)
	if xu < 0.05 || xu > 0.95 {
		t.Fatalf("xu = %v", xu)
	}
	if th := yu - yl; th < 0.15 || th > 0.25 {
		t.Fatalf("thickness = %v, want ~0.2", th)
	}
}
