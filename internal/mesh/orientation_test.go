package mesh

import (
	"math"
	"testing"

	"nektar/internal/basis"
	"nektar/internal/lapack"
)

// rotatedPairMesh builds two unit hexes filling [0,2]x[0,1]^2 where
// the second element's local frame is rotated 90 degrees about the x
// axis (local xi2 -> global +z, local xi3 -> global -y). The shared
// face is then traversed with different local axes by the two
// elements, exercising the FaceOrient swap/reversal logic that the
// structured generators never produce.
func rotatedPairMesh(t *testing.T, order int, rotate bool) *Mesh {
	t.Helper()
	verts := [][3]float64{
		// Element A corners (standard orientation), x in [0,1].
		{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
		// Extra corners for x = 2.
		{2, 0, 0}, {2, 1, 0}, {2, 0, 1}, {2, 1, 1},
	}
	a := ElemSpec{Shape: basis.Hex, Verts: []int{0, 1, 2, 3, 4, 5, 6, 7}}
	var b ElemSpec
	if rotate {
		// Local frame: xi1 -> +x, xi2 -> +z, xi3 -> -y (proper
		// rotation, positive Jacobian).
		b = ElemSpec{Shape: basis.Hex, Verts: []int{
			2,  // (-1,-1,-1): x=1, z=0, y=1
			9,  // ( 1,-1,-1): x=2, z=0, y=1
			11, // ( 1, 1,-1): x=2, z=1, y=1
			6,  // (-1, 1,-1): x=1, z=1, y=1
			1,  // (-1,-1, 1): x=1, z=0, y=0
			8,  // ( 1,-1, 1)
			10, // ( 1, 1, 1)
			5,  // (-1, 1, 1)
		}}
	} else {
		b = ElemSpec{Shape: basis.Hex, Verts: []int{1, 8, 9, 2, 5, 10, 11, 6}}
	}
	m, err := New(order, verts, []ElemSpec{a, b})
	if err != nil {
		t.Fatal(err)
	}
	m.TagBoundary(func(x, y, z float64) string { return "wall" })
	return m
}

// solveRotatedPoisson solves -Lap u = f with homogeneous Dirichlet and
// the manufactured solution sin(pi x / 2) sin(pi y) sin(pi z).
func solveRotatedPoisson(t *testing.T, m *Mesh) float64 {
	t.Helper()
	uex := func(x, y, z float64) float64 {
		return math.Sin(math.Pi*x/2) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
	}
	lam := math.Pi * math.Pi * (0.25 + 1 + 1)
	a := NewAssembly(m, func(string) bool { return true })
	// Assemble the full global system densely (tiny: 2 elements).
	n := a.NSolve
	mat := make([]float64, n*n)
	rhs := make([]float64, n)
	for ei, el := range m.Elems {
		h := el.Laplacian()
		nm := el.Ref.NModes
		l2g, sgn := a.L2G[ei], a.Sign[ei]
		f := make([]float64, el.Ref.NQuad)
		for q := range f {
			f[q] = lam * uex(el.X[0][q], el.X[1][q], el.X[2][q])
		}
		out := make([]float64, nm)
		el.IProduct(f, out)
		for mi := 0; mi < nm; mi++ {
			gi := l2g[mi]
			if gi >= n {
				continue
			}
			rhs[gi] += sgn[mi] * out[mi]
			for mj := 0; mj < nm; mj++ {
				gj := l2g[mj]
				if gj < n {
					mat[gi*n+gj] += sgn[mi] * sgn[mj] * h[mi*nm+mj]
				}
			}
		}
	}
	if err := lapack.SolveDense(n, mat, rhs); err != nil {
		t.Fatal(err)
	}
	u := make([]float64, a.NGlobal)
	copy(u, rhs)
	// L2 error.
	var sum float64
	for ei, el := range m.Elems {
		coef := make([]float64, el.Ref.NModes)
		a.Scatter(ei, u, coef)
		phys := make([]float64, el.Ref.NQuad)
		el.BwdTrans(coef, phys)
		for q := 0; q < el.Ref.NQuad; q++ {
			d := phys[q] - uex(el.X[0][q], el.X[1][q], el.X[2][q])
			sum += d * d * el.WJ[q]
		}
	}
	return math.Sqrt(sum)
}

func TestRotatedHexFaceOrientation(t *testing.T) {
	// The rotated mesh must exercise a non-trivial face orientation...
	m := rotatedPairMesh(t, 5, true)
	nontrivial := false
	for _, el := range m.Elems {
		for _, or := range el.FaceOrient {
			if or.Swap || or.Rev1 || or.Rev2 {
				nontrivial = true
			}
		}
	}
	if !nontrivial {
		t.Fatal("test mesh does not exercise non-identity face orientations")
	}
	// ...and the Poisson solution must be as accurate as on the
	// axis-aligned mesh: if the face-mode swap/sign logic were wrong,
	// C0 continuity would break and the error would blow up.
	eRot := solveRotatedPoisson(t, m)
	eStd := solveRotatedPoisson(t, rotatedPairMesh(t, 5, false))
	if eRot > 2*eStd+1e-12 {
		t.Fatalf("rotated-mesh error %g vs standard %g", eRot, eStd)
	}
	if eRot > 2e-3 {
		t.Fatalf("rotated-mesh error %g too large", eRot)
	}
}

func TestRotatedHexAssemblyCountsAgree(t *testing.T) {
	// Global dof counts must be identical regardless of the local
	// orientation of element B.
	mr := rotatedPairMesh(t, 4, true)
	ms := rotatedPairMesh(t, 4, false)
	ar := NewAssembly(mr, nil)
	as := NewAssembly(ms, nil)
	if ar.NGlobal != as.NGlobal || mr.NumFaces != ms.NumFaces || mr.NumEdges != ms.NumEdges {
		t.Fatalf("rotated (%d dofs, %d faces, %d edges) vs standard (%d, %d, %d)",
			ar.NGlobal, mr.NumFaces, mr.NumEdges, as.NGlobal, ms.NumFaces, ms.NumEdges)
	}
}
