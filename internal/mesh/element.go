// Package mesh provides geometric spectral/hp elements, hybrid
// unstructured meshes (triangles and quadrilaterals in 2D, hexahedra
// in 3D), mesh generators for the paper's benchmark geometries (bluff
// body / cylinder O-grids, NACA wing sections, channels), and the C0
// global assembly map used by the solvers.
package mesh

import (
	"fmt"
	"math"

	"nektar/internal/basis"
	"nektar/internal/blas"
	"nektar/internal/lapack"
)

// Element is a reference element equipped with a geometric mapping:
// the isoparametric (vertex-linear) image of the reference shape.
type Element struct {
	ID   int
	Ref  *basis.Ref
	Vert []int // global vertex ids, in local order

	Edge       []int  // global edge ids, in local edge order
	EdgeRev    []bool // true if local edge direction opposes global
	Face       []int  // global face ids (3D)
	FaceOrient []FaceOrient

	// Geometry at quadrature points.
	X     [3][]float64    // physical coordinates
	Jac   []float64       // determinant of dx/dxi (> 0)
	DxiDx [3][3][]float64 // [d][e]: dxi_d / dx_e
	WJ    []float64       // quadrature weight * Jac

	massChol *lapack.BandStorage
}

// newElement tabulates the geometry of an element whose global
// vertices have coordinates verts (in local vertex order).
func newElement(id int, ref *basis.Ref, vertIDs []int, coords [][3]float64) (*Element, error) {
	e := &Element{ID: id, Ref: ref, Vert: append([]int(nil), vertIDs...)}
	dim := ref.Shape.Dim()
	nq := ref.NQuad

	// The vertex-linear mapping x(xi) = sum_c v_c N_c(xi) reuses the
	// tabulated vertex modes of the basis, so geometry and field share
	// one consistent representation.
	vertMode := make([]int, ref.Shape.NumVerts())
	for mi, m := range ref.Modes {
		if m.Type == basis.VertexMode {
			vertMode[m.Entity] = mi
		}
	}

	var dxdxi [3][3][]float64 // [e][d]: dx_e / dxi_d
	for ei := 0; ei < dim; ei++ {
		e.X[ei] = make([]float64, nq)
		for d := 0; d < dim; d++ {
			dxdxi[ei][d] = make([]float64, nq)
		}
	}
	for c, mi := range vertMode {
		for ei := 0; ei < dim; ei++ {
			v := coords[c][ei]
			if v == 0 {
				continue
			}
			blas.Daxpy(nq, v, ref.B[mi*nq:], 1, e.X[ei], 1)
			for d := 0; d < dim; d++ {
				blas.Daxpy(nq, v, ref.D[d][mi*nq:], 1, dxdxi[ei][d], 1)
			}
		}
	}

	// Invert the Jacobian pointwise.
	e.Jac = make([]float64, nq)
	e.WJ = make([]float64, nq)
	for d := 0; d < dim; d++ {
		for ei := 0; ei < dim; ei++ {
			e.DxiDx[d][ei] = make([]float64, nq)
		}
	}
	for q := 0; q < nq; q++ {
		var det float64
		if dim == 2 {
			a, b := dxdxi[0][0][q], dxdxi[0][1][q]
			c, d := dxdxi[1][0][q], dxdxi[1][1][q]
			det = a*d - b*c
			if det <= 0 {
				return nil, fmt.Errorf("mesh: element %d has non-positive Jacobian %g at point %d", id, det, q)
			}
			inv := 1 / det
			e.DxiDx[0][0][q] = d * inv
			e.DxiDx[0][1][q] = -b * inv
			e.DxiDx[1][0][q] = -c * inv
			e.DxiDx[1][1][q] = a * inv
		} else {
			m := [3][3]float64{
				{dxdxi[0][0][q], dxdxi[0][1][q], dxdxi[0][2][q]},
				{dxdxi[1][0][q], dxdxi[1][1][q], dxdxi[1][2][q]},
				{dxdxi[2][0][q], dxdxi[2][1][q], dxdxi[2][2][q]},
			}
			det = m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
				m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
				m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
			if det <= 0 {
				return nil, fmt.Errorf("mesh: element %d has non-positive Jacobian %g at point %d", id, det, q)
			}
			inv := 1 / det
			// DxiDx[d][e] = dxi_d/dx_e = (J^{-1})[d][e] with
			// J[e][d] = dx_e/dxi_d; standard adjugate formula.
			e.DxiDx[0][0][q] = (m[1][1]*m[2][2] - m[1][2]*m[2][1]) * inv
			e.DxiDx[0][1][q] = (m[2][1]*m[0][2] - m[2][2]*m[0][1]) * inv
			e.DxiDx[0][2][q] = (m[0][1]*m[1][2] - m[0][2]*m[1][1]) * inv
			e.DxiDx[1][0][q] = (m[1][2]*m[2][0] - m[1][0]*m[2][2]) * inv
			e.DxiDx[1][1][q] = (m[2][2]*m[0][0] - m[2][0]*m[0][2]) * inv
			e.DxiDx[1][2][q] = (m[0][2]*m[1][0] - m[0][0]*m[1][2]) * inv
			e.DxiDx[2][0][q] = (m[1][0]*m[2][1] - m[1][1]*m[2][0]) * inv
			e.DxiDx[2][1][q] = (m[2][0]*m[0][1] - m[2][1]*m[0][0]) * inv
			e.DxiDx[2][2][q] = (m[0][0]*m[1][1] - m[0][1]*m[1][0]) * inv
		}
		e.Jac[q] = det
		e.WJ[q] = ref.W[q] * det
	}
	return e, nil
}

// BwdTrans evaluates modal coefficients at the quadrature points.
func (e *Element) BwdTrans(coef, phys []float64) {
	e.Ref.BackwardTransform(coef, phys)
}

// IProduct computes out[m] = integral phi_m * f over the element.
func (e *Element) IProduct(phys, out []float64) {
	nq := e.Ref.NQuad
	tmp := make([]float64, nq)
	blas.Dvmul(nq, phys, 1, e.WJ, 1, tmp, 1)
	e.Ref.IProductPhys(tmp, out)
}

// FwdTrans projects physical values onto the element's modal space
// (Galerkin projection with the element's geometric mass matrix).
func (e *Element) FwdTrans(phys, coef []float64) {
	if e.massChol == nil {
		m := e.Mass()
		n := e.Ref.NModes
		band := lapack.NewBandStorage(n, n-1)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				band.Set(i, j, m[i*n+j])
			}
		}
		if err := lapack.Dpbtrf(band); err != nil {
			panic(fmt.Sprintf("mesh: element %d mass not SPD: %v", e.ID, err))
		}
		e.massChol = band
	}
	e.IProduct(phys, coef)
	lapack.Dpbtrs(e.massChol, coef)
}

// PhysGrad computes the physical-space gradient of a modal field at
// the quadrature points: out[ei][q] = du/dx_ei.
func (e *Element) PhysGrad(coef []float64, out [][]float64) {
	dim := e.Ref.Shape.Dim()
	nq := e.Ref.NQuad
	dpar := make([]float64, nq)
	for ei := 0; ei < dim; ei++ {
		blas.Dfill(nq, 0, out[ei], 1)
	}
	for d := 0; d < dim; d++ {
		e.Ref.BwdTransDeriv(d, coef, dpar)
		for ei := 0; ei < dim; ei++ {
			for q := 0; q < nq; q++ {
				out[ei][q] += dpar[q] * e.DxiDx[d][ei][q]
			}
		}
	}
}

// Mass returns the elemental mass matrix M_mn = integral phi_m phi_n
// over the element (row-major NModes^2).
func (e *Element) Mass() []float64 {
	return e.Ref.Mass(e.Jac)
}

// Laplacian returns the elemental (weak) Laplacian matrix
// L_mn = integral grad phi_m . grad phi_n over the element.
func (e *Element) Laplacian() []float64 {
	n, nq := e.Ref.NModes, e.Ref.NQuad
	dim := e.Ref.Shape.Dim()
	// G[ei][m*nq+q] = d phi_m / d x_ei.
	g := make([][]float64, dim)
	for ei := range g {
		g[ei] = make([]float64, n*nq)
	}
	for d := 0; d < dim; d++ {
		dd := e.Ref.D[d]
		for ei := 0; ei < dim; ei++ {
			met := e.DxiDx[d][ei]
			for m := 0; m < n; m++ {
				row := dd[m*nq : m*nq+nq]
				out := g[ei][m*nq : m*nq+nq]
				for q := 0; q < nq; q++ {
					out[q] += row[q] * met[q]
				}
			}
		}
	}
	// L = sum_e (G_e W) G_e^T is symmetric; scaling G by sqrt(W) turns
	// each term into a rank-nq symmetric update, halving the build
	// flops via Dsyrk.
	sqw := make([]float64, nq)
	for q := 0; q < nq; q++ {
		sqw[q] = math.Sqrt(e.WJ[q])
	}
	lap := make([]float64, n*n)
	sg := make([]float64, n*nq)
	for ei := 0; ei < dim; ei++ {
		for m := 0; m < n; m++ {
			blas.Dvmul(nq, g[ei][m*nq:], 1, sqw, 1, sg[m*nq:], 1)
		}
		blas.Dsyrk(blas.Lower, blas.NoTrans, n, nq, 1, sg, nq, 1, lap, n)
	}
	blas.SymmetrizeLower(n, lap, n)
	return lap
}

// Helmholtz returns L + lambda*M, the elemental Helmholtz operator of
// the paper's pressure (lambda = 0, Poisson) and viscous solves.
func (e *Element) Helmholtz(lambda float64) []float64 {
	h := e.Laplacian()
	if lambda != 0 {
		m := e.Mass()
		blas.Daxpy(len(h), lambda, m, 1, h, 1)
	}
	return h
}

// Integral computes the integral of a physical-space field over the
// element.
func (e *Element) Integral(phys []float64) float64 {
	return blas.Ddot(e.Ref.NQuad, phys, 1, e.WJ, 1)
}

// Area returns the measure (area or volume) of the element.
func (e *Element) Area() float64 {
	var s float64
	for _, w := range e.WJ {
		s += w
	}
	return s
}
