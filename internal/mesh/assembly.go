package mesh

import (
	"sort"

	"nektar/internal/basis"
	"nektar/internal/jacobi"
	"nektar/internal/lapack"
)

// Assembly is the C0 global numbering of a mesh: the local-to-global
// map with orientation signs, with Dirichlet degrees of freedom
// numbered last and the remaining unknowns reordered by reverse
// Cuthill-McKee to keep the assembled global matrix banded — the
// structure the paper's direct solvers exploit.
type Assembly struct {
	Mesh *Mesh

	NGlobal int // total global dofs
	NSolve  int // unknown dofs, numbered [0, NSolve)

	// L2G[e][m] is the global dof of local mode m of element e;
	// Sign[e][m] is the orientation factor (+1/-1).
	L2G  [][]int
	Sign [][]float64

	// VertDof[v] is the global dof of mesh vertex v; EdgeDof[ed][k]
	// the dof of the k-th mode on global edge ed (nil slices when the
	// order has no edge modes).
	VertDof []int
	EdgeDof [][]int
	FaceDof [][]int
}

// NewAssembly numbers the global degrees of freedom. dirichletTag
// reports whether a boundary tag carries Dirichlet (essential)
// conditions; boundary entities with such tags have their dofs placed
// after the unknowns. A nil dirichletTag means all-natural
// (pure-Neumann) boundaries.
func NewAssembly(m *Mesh, dirichletTag func(tag string) bool) *Assembly {
	a := &Assembly{Mesh: m}
	p := m.Order
	nEdgeModes := p - 1
	nFaceModes := (p - 1) * (p - 1) // hex faces only

	// Raw (pre-reordering) dof ids.
	nv := len(m.Verts)
	a.VertDof = make([]int, nv)
	for v := range a.VertDof {
		a.VertDof[v] = v
	}
	next := nv
	a.EdgeDof = make([][]int, m.NumEdges)
	for e := range a.EdgeDof {
		a.EdgeDof[e] = make([]int, nEdgeModes)
		for k := 0; k < nEdgeModes; k++ {
			a.EdgeDof[e][k] = next
			next++
		}
	}
	a.FaceDof = make([][]int, m.NumFaces)
	if m.Dim == 3 {
		for f := range a.FaceDof {
			a.FaceDof[f] = make([]int, nFaceModes)
			for k := 0; k < nFaceModes; k++ {
				a.FaceDof[f][k] = next
				next++
			}
		}
	}
	interiorBase := next
	for _, el := range m.Elems {
		next += el.Ref.NModes - el.Ref.NBnd
	}
	a.NGlobal = next

	// Build raw local-to-global.
	rawL2G := make([][]int, len(m.Elems))
	a.Sign = make([][]float64, len(m.Elems))
	intNext := interiorBase
	for ei, el := range m.Elems {
		l2g := make([]int, el.Ref.NModes)
		sign := make([]float64, el.Ref.NModes)
		for mi, mo := range el.Ref.Modes {
			sign[mi] = 1
			switch mo.Type {
			case basis.VertexMode:
				l2g[mi] = a.VertDof[el.Vert[mo.Entity]]
			case basis.EdgeMode:
				l2g[mi] = a.EdgeDof[el.Edge[mo.Entity]][mo.Index]
				// Edge mode k has trace A_{k+2}; reversing the edge
				// parameter flips the sign of odd k modes.
				if el.EdgeRev[mo.Entity] && mo.Index%2 == 1 {
					sign[mi] = -1
				}
			case basis.FaceMode:
				or := el.FaceOrient[mo.Entity]
				k1, k2 := mo.Index, mo.Index2
				s := 1.0
				if or.Rev1 && k1%2 == 1 {
					s = -s
				}
				if or.Rev2 && k2%2 == 1 {
					s = -s
				}
				if or.Swap {
					k1, k2 = k2, k1
				}
				l2g[mi] = a.FaceDof[el.Face[mo.Entity]][k1*(p-1)+k2]
				sign[mi] = s
			case basis.InteriorMode:
				l2g[mi] = intNext
				intNext++
			}
		}
		rawL2G[ei] = l2g
		a.Sign[ei] = sign
	}

	// Mark Dirichlet dofs.
	dir := make([]bool, a.NGlobal)
	if dirichletTag != nil {
		markEdge := func(el *Element, le int) {
			ev := EdgeVertsOf(el.Ref.Shape)[le]
			dir[a.VertDof[el.Vert[ev[0]]]] = true
			dir[a.VertDof[el.Vert[ev[1]]]] = true
			for _, d := range a.EdgeDof[el.Edge[le]] {
				dir[d] = true
			}
		}
		for _, be := range m.BndEdges {
			if !dirichletTag(be.Tag) {
				continue
			}
			markEdge(m.Elems[be.Elem], be.LocalEdge)
		}
		for _, bf := range m.BndFaces {
			if !dirichletTag(bf.Tag) {
				continue
			}
			el := m.Elems[bf.Elem]
			// A Dirichlet face pins its face modes, its four edges and
			// its four vertices.
			for _, d := range a.FaceDof[el.Face[bf.LocalFace]] {
				dir[d] = true
			}
			fv := basis.HexFaceVerts[bf.LocalFace]
			for _, lv := range fv {
				dir[a.VertDof[el.Vert[lv]]] = true
			}
			for le, ev := range basis.HexEdgeVerts {
				if onFace(fv, ev) {
					for _, d := range a.EdgeDof[el.Edge[le]] {
						dir[d] = true
					}
				}
			}
		}
	}

	// Reorder: unknowns first in reverse Cuthill-McKee order over the
	// dof-connectivity graph, Dirichlet dofs after.
	perm := a.reorder(rawL2G, dir)

	a.L2G = make([][]int, len(m.Elems))
	for ei, l2g := range rawL2G {
		nl := make([]int, len(l2g))
		for mi, g := range l2g {
			nl[mi] = perm[g]
		}
		a.L2G[ei] = nl
	}
	for v := range a.VertDof {
		a.VertDof[v] = perm[a.VertDof[v]]
	}
	for e := range a.EdgeDof {
		for k := range a.EdgeDof[e] {
			a.EdgeDof[e][k] = perm[a.EdgeDof[e][k]]
		}
	}
	for f := range a.FaceDof {
		for k := range a.FaceDof[f] {
			a.FaceDof[f][k] = perm[a.FaceDof[f][k]]
		}
	}
	return a
}

// onFace reports whether both endpoints of a local hex edge belong to
// the 4-vertex local face fv.
func onFace(fv [4]int, ev [2]int) bool {
	in := func(v int) bool {
		for _, f := range fv {
			if f == v {
				return true
			}
		}
		return false
	}
	return in(ev[0]) && in(ev[1])
}

// reorder computes the final permutation raw-dof -> new-dof: unknowns
// get [0, NSolve) in reverse Cuthill-McKee order, Dirichlet dofs get
// [NSolve, NGlobal).
func (a *Assembly) reorder(rawL2G [][]int, dir []bool) []int {
	n := a.NGlobal
	// Adjacency between unknown dofs sharing an element.
	adj := make([][]int, n)
	for _, l2g := range rawL2G {
		for _, gi := range l2g {
			if dir[gi] {
				continue
			}
			for _, gj := range l2g {
				if gj != gi && !dir[gj] {
					adj[gi] = append(adj[gi], gj)
				}
			}
		}
	}
	deg := make([]int, n)
	for i := range adj {
		sort.Ints(adj[i])
		// Deduplicate.
		out := adj[i][:0]
		prev := -1
		for _, v := range adj[i] {
			if v != prev {
				out = append(out, v)
				prev = v
			}
		}
		adj[i] = out
		deg[i] = len(out)
	}

	visited := make([]bool, n)
	var order []int
	for {
		// Pick an unvisited unknown of minimum degree as BFS root.
		root, best := -1, 1<<62
		for i := 0; i < n; i++ {
			if !dir[i] && !visited[i] && deg[i] < best {
				root, best = i, deg[i]
			}
		}
		if root < 0 {
			break
		}
		queue := []int{root}
		visited[root] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbrs := append([]int(nil), adj[v]...)
			sort.Slice(nbrs, func(i, j int) bool { return deg[nbrs[i]] < deg[nbrs[j]] })
			for _, w := range nbrs {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	a.NSolve = len(order)

	perm := make([]int, n)
	for i := range perm {
		perm[i] = -1
	}
	// Reverse Cuthill-McKee: reverse the BFS ordering.
	for i, raw := range order {
		perm[raw] = a.NSolve - 1 - i
	}
	nextDir := a.NSolve
	for i := 0; i < n; i++ {
		if perm[i] == -1 {
			perm[i] = nextDir
			nextDir++
		}
	}
	return perm
}

// Gather accumulates element-local coefficient arrays into a global
// vector: global[g] += sign * local[m] (the transpose of Scatter).
// The global slice must have length NGlobal.
func (a *Assembly) Gather(elem int, local, global []float64) {
	l2g, sign := a.L2G[elem], a.Sign[elem]
	for m, g := range l2g {
		global[g] += sign[m] * local[m]
	}
}

// Scatter extracts element-local coefficients from a global vector:
// local[m] = sign * global[g].
func (a *Assembly) Scatter(elem int, global, local []float64) {
	l2g, sign := a.L2G[elem], a.Sign[elem]
	for m, g := range l2g {
		local[m] = sign[m] * global[g]
	}
}

// Bandwidth returns the half-bandwidth of the assembled global matrix
// restricted to the unknown dofs: max |gi - gj| over element dof
// pairs with both unknowns.
func (a *Assembly) Bandwidth() int {
	var kd int
	for _, l2g := range a.L2G {
		for _, gi := range l2g {
			if gi >= a.NSolve {
				continue
			}
			for _, gj := range l2g {
				if gj >= a.NSolve {
					continue
				}
				if d := gi - gj; d > kd {
					kd = d
				}
			}
		}
	}
	return kd
}

// AssembleBanded assembles per-element matrices (given by the callback
// elemMat, row-major NModes^2) into the global banded system over the
// unknown dofs, returning the band matrix and the coupling columns to
// Dirichlet dofs as a sparse list used to form right-hand sides.
func (a *Assembly) AssembleBanded(elemMat func(e int) []float64) (*lapack.BandStorage, []DirCoupling) {
	kd := a.Bandwidth()
	band := lapack.NewBandStorage(a.NSolve, kd)
	var coup []DirCoupling
	for ei := range a.Mesh.Elems {
		mat := elemMat(ei)
		l2g, sign := a.L2G[ei], a.Sign[ei]
		n := len(l2g)
		for mi := 0; mi < n; mi++ {
			gi := l2g[mi]
			if gi >= a.NSolve {
				continue
			}
			for mj := 0; mj < n; mj++ {
				gj := l2g[mj]
				v := sign[mi] * sign[mj] * mat[mi*n+mj]
				if v == 0 {
					continue
				}
				if gj >= a.NSolve {
					coup = append(coup, DirCoupling{Row: gi, Dir: gj, Val: v})
				} else if gj <= gi {
					band.Add(gi, gj, v)
				}
			}
		}
	}
	return band, coup
}

// DirCoupling is one entry coupling an unknown row to a Dirichlet dof:
// the assembled RHS gets rhs[Row] -= Val * dirichletValue[Dir].
type DirCoupling struct {
	Row, Dir int
	Val      float64
}

// ProjectEdgeTrace computes the Dirichlet dof values for boundary edge
// be from a boundary function g(x, y): the two vertex values plus the
// L2 projection of the residual onto the edge's interior modes.
// Values are written into global (length NGlobal) at the edge's dofs.
func (a *Assembly) ProjectEdgeTrace(be BndEdge, g func(x, y float64) float64, global []float64) {
	m := a.Mesh
	el := m.Elems[be.Elem]
	ev := EdgeVertsOf(el.Ref.Shape)[be.LocalEdge]
	va := m.Verts[el.Vert[ev[0]]]
	vb := m.Verts[el.Vert[ev[1]]]
	ga := g(va[0], va[1])
	gb := g(vb[0], vb[1])
	global[a.VertDof[el.Vert[ev[0]]]] = ga
	global[a.VertDof[el.Vert[ev[1]]]] = gb

	p := m.Order
	if p < 2 {
		return
	}
	// 1D projection along the edge: subtract the linear (vertex) part,
	// then project onto A_2..A_p with the 1D mass matrix. The edge
	// parameter s runs from the *global* edge start (smaller vertex
	// id) so the stored dof values are orientation-independent.
	sa, sb := va, vb
	if el.EdgeRev[be.LocalEdge] {
		sa, sb = sb, sa
		ga, gb = gb, ga
	}
	q := p + 2
	rule := jacobi.NewRule(jacobi.Lobatto, q, 0, 0)
	nint := p - 1
	mass := make([]float64, nint*nint)
	rhs := make([]float64, nint)
	for qi, s := range rule.Points {
		x := 0.5*(1-s)*sa[0] + 0.5*(1+s)*sb[0]
		y := 0.5*(1-s)*sa[1] + 0.5*(1+s)*sb[1]
		resid := g(x, y) - 0.5*(1-s)*ga - 0.5*(1+s)*gb
		w := rule.Weight[qi]
		for i := 0; i < nint; i++ {
			ai := basis.ModifiedA(i+2, s)
			rhs[i] += w * ai * resid
			for j := 0; j < nint; j++ {
				mass[i*nint+j] += w * ai * basis.ModifiedA(j+2, s)
			}
		}
	}
	if err := lapack.SolveDense(nint, mass, rhs); err != nil {
		panic("mesh: edge trace mass singular: " + err.Error())
	}
	for k := 0; k < nint; k++ {
		global[a.EdgeDof[be.Edge][k]] = rhs[k]
	}
}
