// Package basis implements the modal spectral/hp expansion bases of
// Karniadakis & Sherwin (1999) used by the paper's Nektar code:
// the 1D "modified" (p-type) basis, tensor-product quadrilateral and
// hexahedral bases, and the collapsed-coordinate triangular basis.
//
// Modes are ordered boundary-first — vertices, then edges (then faces
// in 3D), then interior ("bubble") modes — exactly the ordering the
// paper illustrates in Figure 9, which produces the
// boundary/interior block structure of the elemental Laplacian shown
// in Figure 10.
package basis

import "nektar/internal/jacobi"

// ModifiedA evaluates the p-th 1D modified basis function at z in
// [-1, 1]:
//
//	A_0(z) = (1-z)/2                     left vertex mode
//	A_1(z) = (1+z)/2                     right vertex mode
//	A_p(z) = (1-z)/2 (1+z)/2 P^{1,1}_{p-2}(z)   interior modes, p >= 2
func ModifiedA(p int, z float64) float64 {
	switch p {
	case 0:
		return 0.5 * (1 - z)
	case 1:
		return 0.5 * (1 + z)
	default:
		return 0.25 * (1 - z) * (1 + z) * jacobi.P(p-2, 1, 1, z)
	}
}

// ModifiedADeriv evaluates d/dz A_p(z).
func ModifiedADeriv(p int, z float64) float64 {
	switch p {
	case 0:
		return -0.5
	case 1:
		return 0.5
	default:
		return -0.5*z*jacobi.P(p-2, 1, 1, z) + 0.25*(1-z)*(1+z)*jacobi.Deriv(p-2, 1, 1, z)
	}
}

// ModifiedB evaluates the (p,q) principal function of the triangular
// collapsed-coordinate basis at z in [-1, 1]:
//
//	B_{0q}(z) = A_q(z)
//	B_{p0}(z) = ((1-z)/2)^p                          p >= 1
//	B_{pq}(z) = ((1-z)/2)^p (1+z)/2 P^{2p-1,1}_{q-1}(z)   p, q >= 1
func ModifiedB(p, q int, z float64) float64 {
	if p == 0 {
		return ModifiedA(q, z)
	}
	f := pow(0.5*(1-z), p)
	if q == 0 {
		return f
	}
	return f * 0.5 * (1 + z) * jacobi.P(q-1, 2*float64(p)-1, 1, z)
}

// ModifiedBDeriv evaluates d/dz B_{pq}(z).
func ModifiedBDeriv(p, q int, z float64) float64 {
	if p == 0 {
		return ModifiedADeriv(q, z)
	}
	f := pow(0.5*(1-z), p)
	df := -0.5 * float64(p) * pow(0.5*(1-z), p-1)
	if q == 0 {
		return df
	}
	a := 2*float64(p) - 1
	pj := jacobi.P(q-1, a, 1, z)
	dpj := jacobi.Deriv(q-1, a, 1, z)
	g := 0.5 * (1 + z) * pj
	dg := 0.5*pj + 0.5*(1+z)*dpj
	return df*g + f*dg
}

// pow is integer exponentiation by squaring for small non-negative
// exponents.
func pow(x float64, n int) float64 {
	r := 1.0
	for n > 0 {
		if n&1 == 1 {
			r *= x
		}
		x *= x
		n >>= 1
	}
	return r
}
