package basis

import "nektar/internal/blas"

// 3D sum-factorization for hexahedra: the backward transform,
// parametric derivatives and inner products factor into three dgemm
// sweeps, reducing the per-element cost from O(P^3 * Q^3) to
// O(P * Q * (P^2 + Q^2)) per direction.
type tensorOps3 struct {
	p1         int // modes per direction
	q1, q2, q3 int
	a, da      [3][]float64 // a[d][p*qd+i] = A_p at direction-d point i
	perm       []int        // perm[(p*p1+q)*p1+r] = boundary-first index
}

func (r *Ref) initTensor3() {
	p1 := r.P + 1
	t := &tensorOps3{p1: p1, q1: r.QDim[0], q2: r.QDim[1], q3: r.QDim[2]}
	for d := 0; d < 3; d++ {
		qd := r.QDim[d]
		t.a[d] = make([]float64, p1*qd)
		t.da[d] = make([]float64, p1*qd)
		for p := 0; p < p1; p++ {
			for i, z := range r.Pts[d] {
				t.a[d][p*qd+i] = ModifiedA(p, z)
				t.da[d][p*qd+i] = ModifiedADeriv(p, z)
			}
		}
	}
	t.perm = make([]int, p1*p1*p1)
	for mi, m := range r.Modes {
		t.perm[(m.P*p1+m.Q)*p1+m.R] = mi
	}
	r.tensor3 = t
}

func (t *tensorOps3) gather(coef, ct []float64) {
	for k, mi := range t.perm {
		ct[k] = coef[mi]
	}
}

func (t *tensorOps3) scatter(ct, coef []float64, acc bool) {
	if acc {
		for k, mi := range t.perm {
			coef[mi] += ct[k]
		}
		return
	}
	for k, mi := range t.perm {
		coef[mi] = ct[k]
	}
}

// bwd evaluates phys[i][j][k] = sum_pqr ct[p][q][r] m1[p][i] m2[q][j]
// m3[r][k] via three factorized sweeps.
func (t *tensorOps3) bwd(m1, m2, m3, ct, phys []float64) {
	p1 := t.p1
	// Sweep 3: T1[(p,q)][k] = sum_r ct[(p,q)][r] m3[r][k].
	t1 := make([]float64, p1*p1*t.q3)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, p1*p1, t.q3, p1, 1, ct, p1, m3, t.q3, 0, t1, t.q3)
	// Sweep 2, per p-slab: T2[p][j][k] = sum_q m2[q][j] T1[p][q][k].
	t2 := make([]float64, p1*t.q2*t.q3)
	for p := 0; p < p1; p++ {
		blas.Dgemm(blas.Trans, blas.NoTrans, t.q2, t.q3, p1, 1,
			m2, t.q2, t1[p*p1*t.q3:], t.q3, 0, t2[p*t.q2*t.q3:], t.q3)
	}
	// Sweep 1: phys[i][(j,k)] = sum_p m1[p][i] T2[p][(j,k)].
	blas.Dgemm(blas.Trans, blas.NoTrans, t.q1, t.q2*t.q3, p1, 1,
		m1, t.q1, t2, t.q2*t.q3, 0, phys, t.q2*t.q3)
}

// iprod computes out[(p,q)][r] = sum_ijk m1[p][i] m2[q][j] m3[r][k]
// f[i][j][k] (the adjoint of bwd).
func (t *tensorOps3) iprod(m1, m2, m3, f, out []float64) {
	p1 := t.p1
	// S1[p][(j,k)] = sum_i m1[p][i] f[i][(j,k)].
	s1 := make([]float64, p1*t.q2*t.q3)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, p1, t.q2*t.q3, t.q1, 1,
		m1, t.q1, f, t.q2*t.q3, 0, s1, t.q2*t.q3)
	// S2[p][q][k] = sum_j m2[q][j] S1[p][j][k], per p-slab.
	s2 := make([]float64, p1*p1*t.q3)
	for p := 0; p < p1; p++ {
		blas.Dgemm(blas.NoTrans, blas.NoTrans, p1, t.q3, t.q2, 1,
			m2, t.q2, s1[p*t.q2*t.q3:], t.q3, 0, s2[p*p1*t.q3:], t.q3)
	}
	// out[(p,q)][r] = sum_k S2[(p,q)][k] m3[r][k].
	blas.Dgemm(blas.NoTrans, blas.Trans, p1*p1, p1, t.q3, 1,
		s2, t.q3, m3, t.q3, 0, out, p1)
}

// tables returns the per-direction basis tables, substituting the
// derivative table in direction d (-1 means none).
func (t *tensorOps3) tables(d int) (m1, m2, m3 []float64) {
	m1, m2, m3 = t.a[0], t.a[1], t.a[2]
	switch d {
	case 0:
		m1 = t.da[0]
	case 1:
		m2 = t.da[1]
	case 2:
		m3 = t.da[2]
	}
	return
}
