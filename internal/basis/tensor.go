package basis

import "nektar/internal/blas"

// Sum-factorization (tensor-product) fast paths. For tensor-product
// shapes the backward transform, parametric derivatives and inner
// products factor into small dgemm pairs, reducing the elemental cost
// from O(NModes*NQuad) to O(P^3) per direction — the optimization all
// production spectral/hp codes (including the paper's Nektar) rely on,
// and the reason the transform stages are a small slice of Figure 12.
//
// Quadrilaterals are factorized here and hexahedra in tensor3.go; the
// triangle's collapsed basis also factorizes in principle but keeps
// the (validated) matrix path for clarity.
type tensorOps struct {
	p1     int // modes per direction
	q1, q2 int
	// a1[p*q1+i] = A_p(xi1_i); da1 its derivative; similarly a2/da2.
	a1, da1 []float64
	a2, da2 []float64
	// perm[p*p1+q] = index of mode (p, q) in the boundary-first
	// ordering.
	perm []int
}

// initTensor builds the factorization tables for tensor shapes.
func (r *Ref) initTensor() {
	switch r.Shape {
	case Hex:
		r.initTensor3()
		return
	case Tri:
		r.initTensorTri()
		q1, q2 := r.QDim[0], r.QDim[1]
		r.triC1 = make([]float64, r.NQuad)
		r.triC2 = make([]float64, r.NQuad)
		for i := 0; i < q1; i++ {
			for j := 0; j < q2; j++ {
				eta1, eta2 := r.Pts[0][i], r.Pts[1][j]
				q := i*q2 + j
				r.triC1[q] = 2 / (1 - eta2)
				r.triC2[q] = (1 + eta1) / (1 - eta2)
			}
		}
		return
	case Quad:
		// handled below
	default:
		return
	}
	p1 := r.P + 1
	q1, q2 := r.QDim[0], r.QDim[1]
	t := &tensorOps{p1: p1, q1: q1, q2: q2}
	t.a1 = make([]float64, p1*q1)
	t.da1 = make([]float64, p1*q1)
	t.a2 = make([]float64, p1*q2)
	t.da2 = make([]float64, p1*q2)
	for p := 0; p < p1; p++ {
		for i, z := range r.Pts[0] {
			t.a1[p*q1+i] = ModifiedA(p, z)
			t.da1[p*q1+i] = ModifiedADeriv(p, z)
		}
		for j, z := range r.Pts[1] {
			t.a2[p*q2+j] = ModifiedA(p, z)
			t.da2[p*q2+j] = ModifiedADeriv(p, z)
		}
	}
	t.perm = make([]int, p1*p1)
	for mi, m := range r.Modes {
		t.perm[m.P*p1+m.Q] = mi
	}
	r.tensor = t
}

// Tensor reports whether the fast factorized paths are available.
func (r *Ref) Tensor() bool { return r.tensor != nil || r.tensor3 != nil || r.tensorT != nil }

// gatherTensor reorders boundary-first modal coefficients into the
// (p, q) tensor layout.
func (t *tensorOps) gather(coef, ct []float64) {
	for k, mi := range t.perm {
		ct[k] = coef[mi]
	}
}

// scatterAdd reorders a tensor-layout result back into boundary-first
// ordering, accumulating when acc is true.
func (t *tensorOps) scatter(ct, coef []float64, acc bool) {
	if acc {
		for k, mi := range t.perm {
			coef[mi] += ct[k]
		}
		return
	}
	for k, mi := range t.perm {
		coef[mi] = ct[k]
	}
}

// bwd applies the two-dgemm factorized evaluation with the given
// per-direction tables (basis values or derivatives).
func (t *tensorOps) bwd(m1, m2, ct, phys []float64) {
	tmp := make([]float64, t.p1*t.q2)
	// tmp[p][j] = sum_q ct[p][q] m2[q][j]
	blas.Dgemm(blas.NoTrans, blas.NoTrans, t.p1, t.q2, t.p1, 1, ct, t.p1, m2, t.q2, 0, tmp, t.q2)
	// phys[i][j] = sum_p m1[p][i] tmp[p][j]
	blas.Dgemm(blas.Trans, blas.NoTrans, t.q1, t.q2, t.p1, 1, m1, t.q1, tmp, t.q2, 0, phys, t.q2)
}

// iprod applies the adjoint factorization: out[p][q] = sum_ij
// m1[p][i] m2[q][j] f[i][j].
func (t *tensorOps) iprod(m1, m2, f, out []float64) {
	tmp := make([]float64, t.p1*t.q2)
	// tmp[p][j] = sum_i m1[p][i] f[i][j]
	blas.Dgemm(blas.NoTrans, blas.NoTrans, t.p1, t.q2, t.q1, 1, m1, t.q1, f, t.q2, 0, tmp, t.q2)
	// out[p][q] = sum_j tmp[p][j] m2[q][j]
	blas.Dgemm(blas.NoTrans, blas.Trans, t.p1, t.p1, t.q2, 1, tmp, t.q2, m2, t.q2, 0, out, t.p1)
}

// BwdTransDeriv evaluates the parametric derivative d phi/d xi_d of a
// modal field at the quadrature points.
func (r *Ref) BwdTransDeriv(d int, coef, out []float64) {
	if r.tensor != nil {
		t := r.tensor
		ct := make([]float64, t.p1*t.p1)
		t.gather(coef, ct)
		if d == 0 {
			t.bwd(t.da1, t.a2, ct, out)
		} else {
			t.bwd(t.a1, t.da2, ct, out)
		}
		return
	}
	if r.tensor3 != nil {
		t := r.tensor3
		ct := make([]float64, t.p1*t.p1*t.p1)
		t.gather(coef, ct)
		m1, m2, m3 := t.tables(d)
		t.bwd(m1, m2, m3, ct, out)
		return
	}
	if r.tensorT != nil {
		// Collapsed-coordinate chain rule: combine the eta-derivatives
		// with the tabulated factors.
		t := r.tensorT
		de1 := make([]float64, r.NQuad)
		t.bwd(coef, t.da, false, true, de1)
		if d == 0 {
			blas.Dvmul(r.NQuad, de1, 1, r.triC1, 1, out, 1)
			return
		}
		t.bwd(coef, t.a, true, false, out) // d/deta2 part
		for q := 0; q < r.NQuad; q++ {
			out[q] += de1[q] * r.triC2[q]
		}
		return
	}
	blas.Dgemv(blas.Trans, r.NModes, r.NQuad, 1, r.D[d], r.NQuad, coef, 1, 0, out, 1)
}

// IProductPhys computes out[m] = sum_q B[m][q] f[q] (the caller has
// already folded quadrature weights and Jacobians into f).
func (r *Ref) IProductPhys(f, out []float64) {
	if r.tensor != nil {
		t := r.tensor
		ct := make([]float64, t.p1*t.p1)
		t.iprod(t.a1, t.a2, f, ct)
		t.scatter(ct, out, false)
		return
	}
	if r.tensor3 != nil {
		t := r.tensor3
		ct := make([]float64, t.p1*t.p1*t.p1)
		m1, m2, m3 := t.tables(-1)
		t.iprod(m1, m2, m3, f, ct)
		t.scatter(ct, out, false)
		return
	}
	if r.tensorT != nil {
		r.tensorT.iprod(f, r.tensorT.a, false, false, out)
		return
	}
	blas.Dgemv(blas.NoTrans, r.NModes, r.NQuad, 1, r.B, r.NQuad, f, 1, 0, out, 1)
}

// IProductDerivAdd accumulates out[m] += alpha * sum_q D_d[m][q] f[q]
// (the weak-derivative inner product of the pressure RHS).
func (r *Ref) IProductDerivAdd(d int, alpha float64, f, out []float64) {
	if r.tensor != nil {
		t := r.tensor
		ct := make([]float64, t.p1*t.p1)
		if d == 0 {
			t.iprod(t.da1, t.a2, f, ct)
		} else {
			t.iprod(t.a1, t.da2, f, ct)
		}
		if alpha != 1 {
			blas.Dscal(len(ct), alpha, ct, 1)
		}
		t.scatter(ct, out, true)
		return
	}
	if r.tensor3 != nil {
		t := r.tensor3
		ct := make([]float64, t.p1*t.p1*t.p1)
		m1, m2, m3 := t.tables(d)
		t.iprod(m1, m2, m3, f, ct)
		if alpha != 1 {
			blas.Dscal(len(ct), alpha, ct, 1)
		}
		t.scatter(ct, out, true)
		return
	}
	if r.tensorT != nil {
		t := r.tensorT
		tmp := make([]float64, r.NModes)
		scaled := make([]float64, r.NQuad)
		if d == 0 {
			blas.Dvmul(r.NQuad, f, 1, r.triC1, 1, scaled, 1)
			t.iprod(scaled, t.da, false, true, tmp)
		} else {
			blas.Dvmul(r.NQuad, f, 1, r.triC2, 1, scaled, 1)
			t.iprod(scaled, t.da, false, true, tmp)
			tmp2 := make([]float64, r.NModes)
			t.iprod(f, t.a, true, false, tmp2)
			blas.Daxpy(r.NModes, 1, tmp2, 1, tmp, 1)
		}
		blas.Daxpy(r.NModes, alpha, tmp, 1, out, 1)
		return
	}
	blas.Dgemv(blas.NoTrans, r.NModes, r.NQuad, alpha, r.D[d], r.NQuad, f, 1, 1, out, 1)
}
