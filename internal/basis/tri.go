package basis

import "nektar/internal/jacobi"

// Triangle local conventions (reference triangle xi1, xi2 >= -1,
// xi1 + xi2 <= 0):
//
//	v2                 vertices: v0=(-1,-1) v1=(1,-1) v2=(-1,1)
//	| \                edges:    e0 bottom (v0->v1),
//	e2  e1                       e1 hypotenuse (v1->v2),
//	|     \                      e2 left (v0->v2)
//	v0-e0- v1
//
// The basis is expressed in the collapsed (Duffy) coordinates
//
//	eta1 = 2(1+xi1)/(1-xi2) - 1,   eta2 = xi2,
//
// and integrates with a Gauss-Radau rule in eta2 whose (1-z) weight
// absorbs the collapsed-coordinate Jacobian (1-eta2)/2.

// TriEdgeVerts maps a local triangle edge to its (start, end) local
// vertices.
var TriEdgeVerts = [3][2]int{{0, 1}, {1, 2}, {0, 2}}

func newTri(p int) *Ref {
	q1, q2 := p+2, p+2
	rule1 := lobattoRule(q1)
	rule2 := jacobi.NewRule(jacobi.RadauM, q2, 1, 0)
	r := &Ref{
		Shape: Tri,
		P:     p,
		QDim:  [3]int{q1, q2, 1},
	}
	r.Pts[0] = rule1.Points
	r.Pts[1] = rule2.Points
	r.NQuad = q1 * q2
	r.W = make([]float64, r.NQuad)
	for i := 0; i < q1; i++ {
		for j := 0; j < q2; j++ {
			// The (1,0) Radau rule integrates f(z)(1-z) dz; the
			// collapsed Jacobian contributes (1-eta2)/2, hence the 0.5.
			r.W[r.qidx(i, j, 0)] = rule1.Weight[i] * rule2.Weight[j] * 0.5
		}
	}

	// Enumerate modes. Index ranges follow the modified triangular
	// basis: p=0: q=0..P; p=1: q=0..P-1; p>=2: q=0..P-p.
	var modes []Mode
	for pp := 0; pp <= p; pp++ {
		qmax := p - pp
		if pp == 0 {
			qmax = p
		} else if pp == 1 {
			qmax = p - 1
		}
		for qq := 0; qq <= qmax; qq++ {
			m := Mode{P: pp, Q: qq}
			switch {
			case pp == 0 && qq == 0:
				m.Type, m.Entity = VertexMode, 0
			case pp == 1 && qq == 0:
				m.Type, m.Entity = VertexMode, 1
			case pp == 0 && qq == 1:
				m.Type, m.Entity = VertexMode, 2
			case qq == 0: // pp >= 2: bottom edge
				m.Type, m.Entity, m.Index = EdgeMode, 0, pp-2
			case pp == 1: // qq >= 1: hypotenuse; trace A_{qq+1}
				m.Type, m.Entity, m.Index = EdgeMode, 1, qq-1
			case pp == 0: // qq >= 2: left edge
				m.Type, m.Entity, m.Index = EdgeMode, 2, qq-2
			default:
				m.Type, m.Entity = InteriorMode, -1
			}
			modes = append(modes, m)
		}
	}
	r.NModes = len(modes)
	r.sortModes(modes)

	r.tabulate(func(m Mode, i, j, _ int) (v, d1, d2, d3 float64) {
		eta1 := rule1.Points[i]
		eta2 := rule2.Points[j]
		var val, de1, de2 float64
		if m.P == 0 && m.Q == 1 {
			// Collapsed top-vertex mode: (1+eta2)/2, independent of eta1.
			val = 0.5 * (1 + eta2)
			de1 = 0
			de2 = 0.5
		} else {
			a := ModifiedA(m.P, eta1)
			da := ModifiedADeriv(m.P, eta1)
			b := ModifiedB(m.P, m.Q, eta2)
			db := ModifiedBDeriv(m.P, m.Q, eta2)
			val = a * b
			de1 = da * b
			de2 = a * db
		}
		// Chain rule from collapsed to reference coordinates:
		// d/dxi1 = (2/(1-eta2)) d/deta1
		// d/dxi2 = ((1+eta1)/(1-eta2)) d/deta1 + d/deta2
		f := 2 / (1 - eta2)
		d1 = de1 * f
		d2 = de1*(1+eta1)/(1-eta2) + de2
		return val, d1, d2, 0
	})
	return r
}
