package basis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestModifiedAVertexValues(t *testing.T) {
	if ModifiedA(0, -1) != 1 || ModifiedA(0, 1) != 0 {
		t.Fatal("A_0 wrong at endpoints")
	}
	if ModifiedA(1, -1) != 0 || ModifiedA(1, 1) != 1 {
		t.Fatal("A_1 wrong at endpoints")
	}
	for p := 2; p <= 8; p++ {
		if ModifiedA(p, -1) != 0 || ModifiedA(p, 1) != 0 {
			t.Fatalf("A_%d should vanish at endpoints", p)
		}
	}
}

func TestModifiedAPartitionOfUnity(t *testing.T) {
	for _, z := range []float64{-1, -0.4, 0, 0.9, 1} {
		if s := ModifiedA(0, z) + ModifiedA(1, z); math.Abs(s-1) > 1e-15 {
			t.Fatalf("A_0+A_1 at %v = %v", z, s)
		}
	}
}

func TestModifiedADerivFiniteDifference(t *testing.T) {
	f := func(pRaw uint8, zRaw int8) bool {
		p := int(pRaw) % 10
		z := float64(zRaw) / 160.0 // in (-0.8, 0.8)
		h := 1e-6
		fd := (ModifiedA(p, z+h) - ModifiedA(p, z-h)) / (2 * h)
		return math.Abs(ModifiedADeriv(p, z)-fd) < 1e-5*(1+math.Abs(fd))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestModifiedBDerivFiniteDifference(t *testing.T) {
	f := func(pRaw, qRaw uint8, zRaw int8) bool {
		p := int(pRaw) % 7
		q := int(qRaw) % 7
		z := float64(zRaw) / 160.0
		h := 1e-6
		fd := (ModifiedB(p, q, z+h) - ModifiedB(p, q, z-h)) / (2 * h)
		return math.Abs(ModifiedBDeriv(p, q, z)-fd) < 1e-5*(1+math.Abs(fd))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestModifiedBReducesToA(t *testing.T) {
	for q := 0; q <= 5; q++ {
		for _, z := range []float64{-0.7, 0.1, 0.8} {
			if math.Abs(ModifiedB(0, q, z)-ModifiedA(q, z)) > 1e-15 {
				t.Fatalf("B_{0,%d} != A_%d at %v", q, q, z)
			}
		}
	}
}

func modeCounts(r *Ref) map[ModeType]int {
	c := map[ModeType]int{}
	for _, m := range r.Modes {
		c[m.Type]++
	}
	return c
}

func TestQuadModeInventory(t *testing.T) {
	p := 4
	r := NewRef(Quad, p)
	if r.NModes != (p+1)*(p+1) {
		t.Fatalf("NModes = %d, want %d", r.NModes, (p+1)*(p+1))
	}
	c := modeCounts(r)
	if c[VertexMode] != 4 || c[EdgeMode] != 4*(p-1) || c[InteriorMode] != (p-1)*(p-1) {
		t.Fatalf("mode counts: %v", c)
	}
	if r.NBnd != 4+4*(p-1) {
		t.Fatalf("NBnd = %d", r.NBnd)
	}
	// Boundary-first ordering: the paper's Figure 9 ordering.
	for i, m := range r.Modes {
		if i < r.NBnd && m.Type == InteriorMode {
			t.Fatal("interior mode ordered before boundary modes")
		}
		if i >= r.NBnd && m.Type != InteriorMode {
			t.Fatal("boundary mode ordered after interior modes")
		}
	}
}

func TestTriModeInventory(t *testing.T) {
	p := 4
	r := NewRef(Tri, p)
	want := (p + 1) * (p + 2) / 2
	if r.NModes != want {
		t.Fatalf("NModes = %d, want %d", r.NModes, want)
	}
	c := modeCounts(r)
	if c[VertexMode] != 3 || c[EdgeMode] != 3*(p-1) || c[InteriorMode] != (p-1)*(p-2)/2 {
		t.Fatalf("mode counts: %v", c)
	}
}

func TestHexModeInventory(t *testing.T) {
	p := 3
	r := NewRef(Hex, p)
	if r.NModes != (p+1)*(p+1)*(p+1) {
		t.Fatalf("NModes = %d", r.NModes)
	}
	c := modeCounts(r)
	if c[VertexMode] != 8 || c[EdgeMode] != 12*(p-1) ||
		c[FaceMode] != 6*(p-1)*(p-1) || c[InteriorMode] != (p-1)*(p-1)*(p-1) {
		t.Fatalf("mode counts: %v", c)
	}
}

func TestReferenceAreas(t *testing.T) {
	// Sum of quadrature weights = measure of the reference element.
	cases := []struct {
		shape Shape
		want  float64
	}{{Quad, 4}, {Tri, 2}, {Hex, 8}}
	for _, tc := range cases {
		r := NewRef(tc.shape, 4)
		var s float64
		for _, w := range r.W {
			s += w
		}
		if math.Abs(s-tc.want) > 1e-12 {
			t.Fatalf("%v: sum W = %v, want %v", tc.shape, s, tc.want)
		}
	}
}

func TestVertexModesPartitionOfUnity(t *testing.T) {
	for _, shape := range []Shape{Quad, Tri, Hex} {
		r := NewRef(shape, 4)
		coef := make([]float64, r.NModes)
		for i, m := range r.Modes {
			if m.Type == VertexMode {
				coef[i] = 1
			}
		}
		phys := make([]float64, r.NQuad)
		r.BackwardTransform(coef, phys)
		for q, v := range phys {
			if math.Abs(v-1) > 1e-12 {
				t.Fatalf("%v: vertex modes sum to %v at q=%d", shape, v, q)
			}
		}
	}
}

// linearCoef returns the modal coefficients of f = a + b*xi1 + c*xi2
// (+ d*xi3 in 3D): only vertex modes are active, with nodal values.
func linearCoef(r *Ref, a, b, c, d float64) []float64 {
	coef := make([]float64, r.NModes)
	var verts [][3]float64
	switch r.Shape {
	case Quad:
		verts = [][3]float64{{-1, -1, 0}, {1, -1, 0}, {1, 1, 0}, {-1, 1, 0}}
	case Tri:
		verts = [][3]float64{{-1, -1, 0}, {1, -1, 0}, {-1, 1, 0}}
	case Hex:
		verts = [][3]float64{
			{-1, -1, -1}, {1, -1, -1}, {1, 1, -1}, {-1, 1, -1},
			{-1, -1, 1}, {1, -1, 1}, {1, 1, 1}, {-1, 1, 1},
		}
	}
	for i, m := range r.Modes {
		if m.Type == VertexMode {
			v := verts[m.Entity]
			coef[i] = a + b*v[0] + c*v[1] + d*v[2]
		}
	}
	return coef
}

// refCoords returns the reference coordinates of quadrature point q.
func refCoords(r *Ref, q int) (x1, x2, x3 float64) {
	k := q % r.QDim[2]
	j := (q / r.QDim[2]) % r.QDim[1]
	i := q / (r.QDim[1] * r.QDim[2])
	x1 = r.Pts[0][i]
	x2 = r.Pts[1][j]
	if r.Shape == Tri {
		// Points are stored in collapsed coordinates.
		eta1, eta2 := x1, x2
		x1 = 0.5*(1+eta1)*(1-eta2) - 1
		x2 = eta2
	}
	if r.Shape.Dim() == 3 {
		x3 = r.Pts[2][k]
	}
	return
}

func TestLinearReproduction(t *testing.T) {
	for _, shape := range []Shape{Quad, Tri, Hex} {
		r := NewRef(shape, 5)
		a, b, c, d := 0.7, 1.3, -0.8, 0.5
		if shape != Hex {
			d = 0
		}
		coef := linearCoef(r, a, b, c, d)
		phys := make([]float64, r.NQuad)
		r.BackwardTransform(coef, phys)
		for q := range phys {
			x1, x2, x3 := refCoords(r, q)
			want := a + b*x1 + c*x2 + d*x3
			if math.Abs(phys[q]-want) > 1e-11 {
				t.Fatalf("%v: linear field at q=%d = %v, want %v", shape, q, phys[q], want)
			}
		}
	}
}

func TestLinearDerivatives(t *testing.T) {
	// The parametric derivative tables must differentiate a linear
	// field exactly: d(a + b*xi1 + c*xi2 + d*xi3)/dxi = (b, c, d).
	for _, shape := range []Shape{Quad, Tri, Hex} {
		r := NewRef(shape, 4)
		b, c, d := 1.7, -2.1, 0.9
		if shape != Hex {
			d = 0
		}
		coef := linearCoef(r, 0.3, b, c, d)
		want := []float64{b, c, d}
		for dir := 0; dir < shape.Dim(); dir++ {
			for q := 0; q < r.NQuad; q++ {
				var got float64
				for m := range r.Modes {
					got += r.D[dir][m*r.NQuad+q] * coef[m]
				}
				if math.Abs(got-want[dir]) > 1e-10 {
					t.Fatalf("%v dir=%d q=%d: deriv = %v, want %v", shape, dir, q, got, want[dir])
				}
			}
		}
	}
}

func TestEdgeModesVanishAtVertices(t *testing.T) {
	// Edge and interior modes must vanish at every vertex; this is the
	// C0 decomposition property of the modified basis.
	vertsXi := map[Shape][][2]float64{
		Quad: {{-1, -1}, {1, -1}, {1, 1}, {-1, 1}},
		Tri:  {{-1, -1}, {1, -1}, {-1, 1}},
	}
	for _, shape := range []Shape{Quad, Tri} {
		r := NewRef(shape, 5)
		for mi, m := range r.Modes {
			if m.Type == VertexMode {
				continue
			}
			for vi, v := range vertsXi[shape] {
				val := evalModeAtXi(r, mi, v[0], v[1])
				if math.Abs(val) > 1e-12 {
					t.Fatalf("%v mode %d (%v) at vertex %d = %v", shape, mi, m.Type, vi, val)
				}
			}
		}
	}
}

// evalModeAtXi evaluates mode mi of a 2D reference element at
// reference coordinates (xi1, xi2) directly from the basis
// definitions.
func evalModeAtXi(r *Ref, mi int, xi1, xi2 float64) float64 {
	m := r.Modes[mi]
	switch r.Shape {
	case Quad:
		return ModifiedA(m.P, xi1) * ModifiedA(m.Q, xi2)
	case Tri:
		if m.P == 0 && m.Q == 1 {
			return 0.5 * (1 + xi2)
		}
		eta2 := xi2
		var eta1 float64
		if eta2 == 1 {
			eta1 = -1 // top vertex: collapsed edge; basis value limit
		} else {
			eta1 = 2*(1+xi1)/(1-xi2) - 1
		}
		return ModifiedA(m.P, eta1) * ModifiedB(m.P, m.Q, eta2)
	}
	panic("2D only")
}

func TestInteriorModesVanishOnEdges(t *testing.T) {
	for _, shape := range []Shape{Quad, Tri} {
		r := NewRef(shape, 5)
		// Sample points along each edge in reference coordinates.
		var edgePts [][2]float64
		ts := []float64{-0.9, -0.3, 0.2, 0.8}
		for _, s := range ts {
			if shape == Quad {
				edgePts = append(edgePts, [2]float64{s, -1}, [2]float64{1, s}, [2]float64{s, 1}, [2]float64{-1, s})
			} else {
				edgePts = append(edgePts, [2]float64{s, -1}, [2]float64{-s, s}, [2]float64{-1, s})
			}
		}
		for mi, m := range r.Modes {
			if m.Type != InteriorMode {
				continue
			}
			for _, p := range edgePts {
				if v := evalModeAtXi(r, mi, p[0], p[1]); math.Abs(v) > 1e-12 {
					t.Fatalf("%v interior mode %d at edge point %v = %v", shape, mi, p, v)
				}
			}
		}
	}
}

func TestEdgeTraceIsModifiedA(t *testing.T) {
	// On its own edge, edge mode k must equal A_{k+2} of the edge
	// parameter — this is what makes inter-element C0 assembly work,
	// including between triangles and quadrilaterals.
	r := NewRef(Tri, 5)
	for mi, m := range r.Modes {
		if m.Type != EdgeMode {
			continue
		}
		for _, s := range []float64{-0.8, -0.1, 0.5, 0.9} {
			var xi [2]float64
			switch m.Entity {
			case 0: // bottom: param s = xi1
				xi = [2]float64{s, -1}
			case 1: // hypotenuse v1->v2: param s = xi2, xi1 = -xi2
				xi = [2]float64{-s, s}
			case 2: // left: param s = xi2
				xi = [2]float64{-1, s}
			}
			got := evalModeAtXi(r, mi, xi[0], xi[1])
			want := ModifiedA(m.Index+2, s)
			if math.Abs(got-want) > 1e-10 {
				t.Fatalf("edge %d mode %d at s=%v: %v, want %v", m.Entity, m.Index, s, got, want)
			}
		}
	}
}

func TestForwardBackwardRoundTrip(t *testing.T) {
	for _, shape := range []Shape{Quad, Tri, Hex} {
		r := NewRef(shape, 4)
		rng := rand.New(rand.NewSource(11))
		coef := make([]float64, r.NModes)
		for i := range coef {
			coef[i] = rng.NormFloat64()
		}
		phys := make([]float64, r.NQuad)
		r.BackwardTransform(coef, phys)
		got := make([]float64, r.NModes)
		r.ForwardTransform(phys, got)
		for i := range coef {
			if math.Abs(got[i]-coef[i]) > 1e-9 {
				t.Fatalf("%v: coef[%d] = %v, want %v", shape, i, got[i], coef[i])
			}
		}
	}
}

func TestMassMatrixSymmetricAndIntegratesConstants(t *testing.T) {
	for _, shape := range []Shape{Quad, Tri} {
		r := NewRef(shape, 4)
		m := r.Mass(nil)
		n := r.NModes
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(m[i*n+j]-m[j*n+i]) > 1e-13 {
					t.Fatalf("%v: mass not symmetric at (%d,%d)", shape, i, j)
				}
			}
		}
		// 1^T M 1 over vertex-partition-of-unity = measure.
		coef := make([]float64, n)
		for i, mo := range r.Modes {
			if mo.Type == VertexMode {
				coef[i] = 1
			}
		}
		var total float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				total += coef[i] * m[i*n+j] * coef[j]
			}
		}
		want := 4.0
		if shape == Tri {
			want = 2.0
		}
		if math.Abs(total-want) > 1e-11 {
			t.Fatalf("%v: integral of 1 = %v, want %v", shape, total, want)
		}
	}
}

func TestQuadraticProjectionExact(t *testing.T) {
	// Functions inside the polynomial space project exactly.
	r := NewRef(Quad, 3)
	phys := make([]float64, r.NQuad)
	for q := range phys {
		x, y, _ := refCoords(r, q)
		phys[q] = x*x*y - 2*x*y + y*y + 1
	}
	coef := make([]float64, r.NModes)
	r.ForwardTransform(phys, coef)
	back := make([]float64, r.NQuad)
	r.BackwardTransform(coef, back)
	for q := range phys {
		if math.Abs(back[q]-phys[q]) > 1e-10 {
			t.Fatalf("projection not exact at q=%d: %v vs %v", q, back[q], phys[q])
		}
	}
}

func TestShapeAccessors(t *testing.T) {
	if Quad.Dim() != 2 || Hex.Dim() != 3 || Tri.Dim() != 2 {
		t.Fatal("Dim wrong")
	}
	if Quad.NumVerts() != 4 || Tri.NumVerts() != 3 || Hex.NumVerts() != 8 {
		t.Fatal("NumVerts wrong")
	}
	if Quad.NumEdges() != 4 || Tri.NumEdges() != 3 || Hex.NumEdges() != 12 {
		t.Fatal("NumEdges wrong")
	}
	if Quad.String() != "quad" || Tri.String() != "tri" || Hex.String() != "hex" {
		t.Fatal("String wrong")
	}
}

func TestHexEdgeAndFaceTables(t *testing.T) {
	// Every edge's endpoints must be distinct vertices, and each
	// vertex must appear in exactly 3 edges.
	cnt := map[int]int{}
	for _, e := range HexEdgeVerts {
		if e[0] == e[1] {
			t.Fatal("degenerate edge")
		}
		cnt[e[0]]++
		cnt[e[1]]++
	}
	for v := 0; v < 8; v++ {
		if cnt[v] != 3 {
			t.Fatalf("vertex %d appears in %d edges, want 3", v, cnt[v])
		}
	}
	// Each vertex appears in exactly 3 faces.
	fcnt := map[int]int{}
	for _, f := range HexFaceVerts {
		for _, v := range f {
			fcnt[v]++
		}
	}
	for v := 0; v < 8; v++ {
		if fcnt[v] != 3 {
			t.Fatalf("vertex %d appears in %d faces, want 3", v, fcnt[v])
		}
	}
}
