package basis

import (
	"fmt"

	"nektar/internal/blas"
	"nektar/internal/jacobi"
	"nektar/internal/lapack"
)

// Shape enumerates the reference element shapes.
type Shape int

const (
	// Quad is the reference quadrilateral [-1,1]^2.
	Quad Shape = iota
	// Tri is the reference triangle {xi1+xi2 <= 0, xi >= -1}.
	Tri
	// Hex is the reference hexahedron [-1,1]^3.
	Hex
)

func (s Shape) String() string {
	switch s {
	case Quad:
		return "quad"
	case Tri:
		return "tri"
	case Hex:
		return "hex"
	}
	return "unknown"
}

// Dim returns the spatial dimension of the shape.
func (s Shape) Dim() int {
	if s == Hex {
		return 3
	}
	return 2
}

// NumVerts returns the vertex count of the shape.
func (s Shape) NumVerts() int {
	switch s {
	case Quad:
		return 4
	case Tri:
		return 3
	case Hex:
		return 8
	}
	return 0
}

// NumEdges returns the edge count of the shape.
func (s Shape) NumEdges() int {
	switch s {
	case Quad:
		return 4
	case Tri:
		return 3
	case Hex:
		return 12
	}
	return 0
}

// ModeType classifies an expansion mode by the mesh entity it attaches
// to.
type ModeType int

const (
	// VertexMode is one of the linear vertex functions.
	VertexMode ModeType = iota
	// EdgeMode is attached to an edge; its trace on that edge is the
	// 1D interior mode A_{k+2}.
	EdgeMode
	// FaceMode is attached to a hexahedral face.
	FaceMode
	// InteriorMode ("bubble") vanishes on the element boundary.
	InteriorMode
)

func (t ModeType) String() string {
	switch t {
	case VertexMode:
		return "vertex"
	case EdgeMode:
		return "edge"
	case FaceMode:
		return "face"
	case InteriorMode:
		return "interior"
	}
	return "unknown"
}

// Mode describes one expansion mode: its tensor indices, its type, the
// local entity (vertex/edge/face number) it attaches to, and its index
// along that entity (used for edge orientation sign flips).
type Mode struct {
	P, Q, R int
	Type    ModeType
	Entity  int // local vertex/edge/face id; -1 for interior
	Index   int // 0-based index along the entity (edge modes: k with trace A_{k+2})
	Index2  int // second face index (3D faces only)
}

// Ref is a tabulated reference element: basis values and parametric
// derivatives at the quadrature points, quadrature weights including
// any collapsed-coordinate Jacobian factor, and the boundary-first
// mode ordering.
type Ref struct {
	Shape  Shape
	P      int // polynomial order
	NModes int
	NBnd   int // number of boundary (vertex+edge+face) modes, ordered first
	NQuad  int // total quadrature points

	QDim [3]int       // per-direction quadrature counts (1 for unused dims)
	Pts  [3][]float64 // per-direction quadrature points (in local/collapsed coords)

	// B[m*NQuad+q] is mode m evaluated at quadrature point q.
	B []float64
	// D[d][m*NQuad+q] is d phi_m / d xi_d at point q (xi are the
	// *reference* coordinates, not the collapsed ones).
	D [3][]float64
	// W[q] is the quadrature weight at point q such that
	// integral over the reference element of f = sum_q W[q] f[q].
	W []float64

	Modes []Mode

	massChol *lapack.BandStorage // cached elemental mass Cholesky (dense as band kd=n-1)
	tensor   *tensorOps          // sum-factorization tables (quads)
	tensor3  *tensorOps3         // sum-factorization tables (hexes)
	tensorT  *tensorTri          // sum-factorization tables (triangles)

	// Triangle chain-rule factors at the quadrature points:
	// d/dxi1 = triC1 * d/deta1; d/dxi2 = triC2 * d/deta1 + d/deta2.
	triC1, triC2 []float64
}

// NewRef tabulates a reference element of the given shape and
// polynomial order p (p >= 1). The quadrature order is p+2 points per
// direction, enough to integrate the mass matrix exactly.
func NewRef(shape Shape, p int) *Ref {
	if p < 1 {
		panic(fmt.Sprintf("basis: order must be >= 1, got %d", p))
	}
	var r *Ref
	switch shape {
	case Quad:
		r = newQuad(p)
	case Tri:
		r = newTri(p)
	case Hex:
		r = newHex(p)
	default:
		panic("basis: unknown shape")
	}
	r.initTensor()
	return r
}

// qidx returns the flat quadrature index for tensor coordinates.
func (r *Ref) qidx(i, j, k int) int {
	return (i*r.QDim[1]+j)*r.QDim[2] + k
}

// BackwardTransform evaluates the expansion at the quadrature points:
// phys[q] = sum_m B[m][q] coef[m], via sum-factorization on tensor
// shapes.
func (r *Ref) BackwardTransform(coef, phys []float64) {
	if r.tensor != nil {
		t := r.tensor
		ct := make([]float64, t.p1*t.p1)
		t.gather(coef, ct)
		t.bwd(t.a1, t.a2, ct, phys)
		return
	}
	if r.tensor3 != nil {
		t := r.tensor3
		ct := make([]float64, t.p1*t.p1*t.p1)
		t.gather(coef, ct)
		m1, m2, m3 := t.tables(-1)
		t.bwd(m1, m2, m3, ct, phys)
		return
	}
	if r.tensorT != nil {
		r.tensorT.bwd(coef, r.tensorT.a, false, false, phys)
		return
	}
	blas.Dgemv(blas.Trans, r.NModes, r.NQuad, 1, r.B, r.NQuad, coef, 1, 0, phys, 1)
}

// InnerProduct computes b[m] = integral phi_m * f over the reference
// element, given f at the quadrature points and an extra pointwise
// factor jw (typically the geometric Jacobian times 1; pass nil for
// the reference element itself).
func (r *Ref) InnerProduct(f, jw, out []float64) {
	tmp := make([]float64, r.NQuad)
	for q := 0; q < r.NQuad; q++ {
		v := f[q] * r.W[q]
		if jw != nil {
			v *= jw[q]
		}
		tmp[q] = v
	}
	blas.Dgemv(blas.NoTrans, r.NModes, r.NQuad, 1, r.B, r.NQuad, tmp, 1, 0, out, 1)
}

// Mass assembles the reference-element mass matrix weighted by the
// pointwise Jacobian jw (nil means unit Jacobian): M_mn = integral
// phi_m phi_n jw.
func (r *Ref) Mass(jw []float64) []float64 {
	n, nq := r.NModes, r.NQuad
	// WB[m][q] = W[q]*jw[q]*B[m][q]; M = WB * B^T.
	wb := make([]float64, n*nq)
	for m := 0; m < n; m++ {
		for q := 0; q < nq; q++ {
			v := r.B[m*nq+q] * r.W[q]
			if jw != nil {
				v *= jw[q]
			}
			wb[m*nq+q] = v
		}
	}
	mass := make([]float64, n*n)
	blas.Dgemm(blas.NoTrans, blas.Trans, n, n, nq, 1, wb, nq, r.B, nq, 0, mass, n)
	return mass
}

// ForwardTransform projects physical values at quadrature points onto
// the modal space of the *reference* element (unit Jacobian): solves
// M coef = B W phys. The mass Cholesky is cached across calls.
func (r *Ref) ForwardTransform(phys, coef []float64) {
	if r.massChol == nil {
		m := r.Mass(nil)
		band := lapack.NewBandStorage(r.NModes, r.NModes-1)
		for i := 0; i < r.NModes; i++ {
			for j := 0; j <= i; j++ {
				band.Set(i, j, m[i*r.NModes+j])
			}
		}
		if err := lapack.Dpbtrf(band); err != nil {
			panic(fmt.Sprintf("basis: reference mass not SPD: %v", err))
		}
		r.massChol = band
	}
	r.InnerProduct(phys, nil, coef)
	lapack.Dpbtrs(r.massChol, coef)
}

// sortModes orders boundary modes first (vertices, then edges, then
// faces) followed by interior modes, and records NBnd.
func (r *Ref) sortModes(modes []Mode) {
	bnd := make([]Mode, 0, len(modes))
	interior := make([]Mode, 0, len(modes))
	// Stable three-pass ordering: vertices, edges, faces, interior.
	for _, t := range []ModeType{VertexMode, EdgeMode, FaceMode} {
		for _, m := range modes {
			if m.Type == t {
				bnd = append(bnd, m)
			}
		}
	}
	for _, m := range modes {
		if m.Type == InteriorMode {
			interior = append(interior, m)
		}
	}
	r.Modes = append(bnd, interior...)
	r.NBnd = len(bnd)
}

// tabulate fills B and D given per-mode evaluation callbacks over the
// tensor quadrature grid. evalAt returns (value, dxi1, dxi2, dxi3) of
// mode m at tensor point (i, j, k).
func (r *Ref) tabulate(evalAt func(m Mode, i, j, k int) (v, d1, d2, d3 float64)) {
	nq := r.NQuad
	r.B = make([]float64, r.NModes*nq)
	for d := 0; d < r.Shape.Dim(); d++ {
		r.D[d] = make([]float64, r.NModes*nq)
	}
	for m, mode := range r.Modes {
		for i := 0; i < r.QDim[0]; i++ {
			for j := 0; j < r.QDim[1]; j++ {
				for k := 0; k < r.QDim[2]; k++ {
					q := r.qidx(i, j, k)
					v, d1, d2, d3 := evalAt(mode, i, j, k)
					r.B[m*nq+q] = v
					r.D[0][m*nq+q] = d1
					if r.Shape.Dim() >= 2 {
						r.D[1][m*nq+q] = d2
					}
					if r.Shape.Dim() >= 3 {
						r.D[2][m*nq+q] = d3
					}
				}
			}
		}
	}
}

// lobattoRule is a convenience wrapper for the Legendre-weight
// Gauss-Lobatto rule used in non-collapsed directions.
func lobattoRule(q int) *jacobi.Rule {
	return jacobi.NewRule(jacobi.Lobatto, q, 0, 0)
}
