package basis

// Quadrilateral local conventions (reference square [-1,1]^2):
//
//	v3 --e2-- v2        vertices: v0=(-1,-1) v1=(1,-1) v2=(1,1) v3=(-1,1)
//	|          |        edges:    e0 bottom (v0->v1), e1 right (v1->v2),
//	e3        e1                  e2 top (v3->v2),    e3 left (v0->v3)
//	|          |
//	v0 --e0-- v1
//
// The edge parameter always runs from the first to the second vertex
// of the pair, so the edge trace of edge mode k is A_{k+2} in that
// parameter.

// QuadEdgeVerts maps a local quad edge to its (start, end) local
// vertices in the direction of increasing edge parameter.
var QuadEdgeVerts = [4][2]int{{0, 1}, {1, 2}, {3, 2}, {0, 3}}

func newQuad(p int) *Ref {
	q := p + 2
	rule := lobattoRule(q)
	r := &Ref{
		Shape: Quad,
		P:     p,
		QDim:  [3]int{q, q, 1},
	}
	r.Pts[0] = rule.Points
	r.Pts[1] = rule.Points
	r.NQuad = q * q
	r.W = make([]float64, r.NQuad)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			r.W[r.qidx(i, j, 0)] = rule.Weight[i] * rule.Weight[j]
		}
	}

	// Enumerate and classify modes (pp, qq) in 0..p.
	var modes []Mode
	vertexID := func(pp, qq int) int {
		switch {
		case pp == 0 && qq == 0:
			return 0
		case pp == 1 && qq == 0:
			return 1
		case pp == 1 && qq == 1:
			return 2
		default:
			return 3
		}
	}
	for pp := 0; pp <= p; pp++ {
		for qq := 0; qq <= p; qq++ {
			m := Mode{P: pp, Q: qq}
			switch {
			case pp <= 1 && qq <= 1:
				m.Type = VertexMode
				m.Entity = vertexID(pp, qq)
			case qq == 0: // bottom edge
				m.Type, m.Entity, m.Index = EdgeMode, 0, pp-2
			case pp == 1 && qq >= 2: // right edge
				m.Type, m.Entity, m.Index = EdgeMode, 1, qq-2
			case qq == 1: // top edge
				m.Type, m.Entity, m.Index = EdgeMode, 2, pp-2
			case pp == 0 && qq >= 2: // left edge
				m.Type, m.Entity, m.Index = EdgeMode, 3, qq-2
			default:
				m.Type, m.Entity = InteriorMode, -1
			}
			modes = append(modes, m)
		}
	}
	r.NModes = len(modes)
	r.sortModes(modes)

	// Pre-tabulate the 1D basis and its derivative at the rule points.
	av := make([][]float64, p+1)
	ad := make([][]float64, p+1)
	for k := 0; k <= p; k++ {
		av[k] = make([]float64, q)
		ad[k] = make([]float64, q)
		for i, z := range rule.Points {
			av[k][i] = ModifiedA(k, z)
			ad[k][i] = ModifiedADeriv(k, z)
		}
	}
	r.tabulate(func(m Mode, i, j, _ int) (v, d1, d2, d3 float64) {
		v = av[m.P][i] * av[m.Q][j]
		d1 = ad[m.P][i] * av[m.Q][j]
		d2 = av[m.P][i] * ad[m.Q][j]
		return v, d1, d2, 0
	})
	return r
}
