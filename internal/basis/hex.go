package basis

// Hexahedron local conventions (reference cube [-1,1]^3). Vertex
// numbering follows the usual counter-clockwise bottom then top order:
//
//	v0=(-1,-1,-1) v1=(1,-1,-1) v2=(1,1,-1) v3=(-1,1,-1)
//	v4=(-1,-1,1)  v5=(1,-1,1)  v6=(1,1,1)  v7=(-1,1,1)
//
// Edges 0-3 run in x, 4-7 in y, 8-11 in z; faces are numbered
// bottom(0)/top(1)/front(2)/back(3)/left(4)/right(5).

// HexEdgeVerts maps a local hex edge to its (start, end) local
// vertices; the edge parameter runs start -> end.
var HexEdgeVerts = [12][2]int{
	{0, 1}, {3, 2}, {4, 5}, {7, 6}, // x-direction
	{0, 3}, {1, 2}, {4, 7}, {5, 6}, // y-direction
	{0, 4}, {1, 5}, {2, 6}, {3, 7}, // z-direction
}

// HexFaceVerts lists the four corner vertices of each face, ordered so
// that the first two local face axes match the tensor axes used for
// face-mode indices (lower global axis first).
var HexFaceVerts = [6][4]int{
	{0, 1, 2, 3}, // z = -1 (axes x, y)
	{4, 5, 6, 7}, // z = +1 (axes x, y)
	{0, 1, 5, 4}, // y = -1 (axes x, z)
	{3, 2, 6, 7}, // y = +1 (axes x, z)
	{0, 3, 7, 4}, // x = -1 (axes y, z)
	{1, 2, 6, 5}, // x = +1 (axes y, z)
}

// hexVertexID maps binary tensor coordinates (p, q, r in {0,1}) to the
// local vertex id.
func hexVertexID(p, q, r int) int {
	base := [2][2]int{{0, 1}, {3, 2}} // [q][p] on the bottom face
	v := base[q][p]
	if r == 1 {
		v += 4
	}
	return v
}

// hexEdgeID returns the local edge id for a mode with exactly one
// tensor index >= 2 (in direction dir) and the other two binary.
func hexEdgeID(dir, a, b int) int {
	// a, b are the binary indices of the two fixed directions in
	// increasing axis order.
	switch dir {
	case 0: // x-edge, fixed (q, r) = (a, b)
		return [2][2]int{{0, 2}, {1, 3}}[a][b]
	case 1: // y-edge, fixed (p, r)
		return [2][2]int{{4, 6}, {5, 7}}[a][b]
	default: // z-edge, fixed (p, q)
		return [2][2]int{{8, 11}, {9, 10}}[a][b]
	}
}

// hexFaceID returns the face id for a mode with exactly one binary
// tensor index (in direction dir with value v).
func hexFaceID(dir, v int) int {
	switch dir {
	case 0: // x fixed: left/right
		return 4 + v
	case 1: // y fixed: front/back
		return 2 + v
	default: // z fixed: bottom/top
		return v
	}
}

func newHex(p int) *Ref {
	q := p + 2
	rule := lobattoRule(q)
	r := &Ref{
		Shape: Hex,
		P:     p,
		QDim:  [3]int{q, q, q},
	}
	r.Pts[0], r.Pts[1], r.Pts[2] = rule.Points, rule.Points, rule.Points
	r.NQuad = q * q * q
	r.W = make([]float64, r.NQuad)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			for k := 0; k < q; k++ {
				r.W[r.qidx(i, j, k)] = rule.Weight[i] * rule.Weight[j] * rule.Weight[k]
			}
		}
	}

	var modes []Mode
	for pp := 0; pp <= p; pp++ {
		for qq := 0; qq <= p; qq++ {
			for rr := 0; rr <= p; rr++ {
				m := Mode{P: pp, Q: qq, R: rr}
				pB, qB, rB := pp <= 1, qq <= 1, rr <= 1
				switch {
				case pB && qB && rB:
					m.Type = VertexMode
					m.Entity = hexVertexID(pp, qq, rr)
				case !pB && qB && rB:
					m.Type, m.Entity, m.Index = EdgeMode, hexEdgeID(0, qq, rr), pp-2
				case pB && !qB && rB:
					m.Type, m.Entity, m.Index = EdgeMode, hexEdgeID(1, pp, rr), qq-2
				case pB && qB && !rB:
					m.Type, m.Entity, m.Index = EdgeMode, hexEdgeID(2, pp, qq), rr-2
				case pB && !qB && !rB:
					m.Type, m.Entity, m.Index, m.Index2 = FaceMode, hexFaceID(0, pp), qq-2, rr-2
				case !pB && qB && !rB:
					m.Type, m.Entity, m.Index, m.Index2 = FaceMode, hexFaceID(1, qq), pp-2, rr-2
				case !pB && !qB && rB:
					m.Type, m.Entity, m.Index, m.Index2 = FaceMode, hexFaceID(2, rr), pp-2, qq-2
				default:
					m.Type, m.Entity = InteriorMode, -1
				}
				modes = append(modes, m)
			}
		}
	}
	r.NModes = len(modes)
	r.sortModes(modes)

	av := make([][]float64, p+1)
	ad := make([][]float64, p+1)
	for k := 0; k <= p; k++ {
		av[k] = make([]float64, q)
		ad[k] = make([]float64, q)
		for i, z := range rule.Points {
			av[k][i] = ModifiedA(k, z)
			ad[k][i] = ModifiedADeriv(k, z)
		}
	}
	r.tabulate(func(m Mode, i, j, k int) (v, d1, d2, d3 float64) {
		v = av[m.P][i] * av[m.Q][j] * av[m.R][k]
		d1 = ad[m.P][i] * av[m.Q][j] * av[m.R][k]
		d2 = av[m.P][i] * ad[m.Q][j] * av[m.R][k]
		d3 = av[m.P][i] * av[m.Q][j] * ad[m.R][k]
		return v, d1, d2, d3
	})
	return r
}
