package basis

import "nektar/internal/blas"

// Sum-factorization for the collapsed triangular basis. The triangle's
// modes phi_pq(eta1, eta2) = A_p(eta1) * B_pq(eta2) factor per p-row:
//
//	u(i, j) = sum_p A_p(eta1_i) * [ sum_q ct[p][q] B_pq(eta2_j) ]
//
// The inner contraction runs over a p-dependent q range (the
// triangular index space), the outer one is a single dgemm — reducing
// the elemental transform from O(P^2 Q^2) to O(P Q^2 + P^2 Q), the
// Karniadakis & Sherwin triangular sum-factorization.
type tensorTri struct {
	p1     int // P + 1
	q1, q2 int
	a, da  []float64 // A_p at eta1 points: [p*q1+i]
	// b[p] holds B_pq at eta2 points for this p's q-range:
	// b[p][q*q2+j]; db its derivative. qlen[p] is the number of q
	// modes for row p.
	b, db [][]float64
	qlen  []int
	// perm[p][q] = boundary-first mode index.
	perm [][]int
}

func (r *Ref) initTensorTri() {
	p1 := r.P + 1
	t := &tensorTri{p1: p1, q1: r.QDim[0], q2: r.QDim[1]}
	t.a = make([]float64, p1*t.q1)
	t.da = make([]float64, p1*t.q1)
	for p := 0; p < p1; p++ {
		for i, z := range r.Pts[0] {
			t.a[p*t.q1+i] = ModifiedA(p, z)
			t.da[p*t.q1+i] = ModifiedADeriv(p, z)
		}
	}
	t.b = make([][]float64, p1)
	t.db = make([][]float64, p1)
	t.qlen = make([]int, p1)
	t.perm = make([][]int, p1)
	for _, m := range r.Modes {
		if m.Q+1 > t.qlen[m.P] {
			t.qlen[m.P] = m.Q + 1
		}
	}
	for p := 0; p < p1; p++ {
		ql := t.qlen[p]
		t.b[p] = make([]float64, ql*t.q2)
		t.db[p] = make([]float64, ql*t.q2)
		t.perm[p] = make([]int, ql)
		for q := 0; q < ql; q++ {
			for j, z := range r.Pts[1] {
				if p == 0 && q == 1 {
					// Collapsed top-vertex mode: (1+eta2)/2 alone.
					t.b[p][q*t.q2+j] = 0.5 * (1 + z)
					t.db[p][q*t.q2+j] = 0.5
				} else {
					t.b[p][q*t.q2+j] = ModifiedB(p, q, z)
					t.db[p][q*t.q2+j] = ModifiedBDeriv(p, q, z)
				}
			}
		}
	}
	for mi, m := range r.Modes {
		t.perm[m.P][m.Q] = mi
	}
	r.tensorT = t
}

// vertexException reports whether mode (p, q) is the special top
// vertex, whose eta1 factor is constant 1 instead of A_0.
func vertexException(p, q int) bool { return p == 0 && q == 1 }

// bwd evaluates phys[i][j] = sum_pq ct A~_p(eta1_i) B_pq(eta2_j),
// where A~ is the given eta1 table (values or derivatives) except for
// the top-vertex mode, whose eta1 factor is 1 (or 0 for derivatives).
func (t *tensorTri) bwd(coef []float64, aTab []float64, useDB bool, deriv1 bool, phys []float64) {
	p1, q1, q2 := t.p1, t.q1, t.q2
	// Inner contraction per p-row: tmp[p][j].
	tmp := make([]float64, p1*q2)
	special := make([]float64, q2) // top-vertex contribution handled separately
	for p := 0; p < p1; p++ {
		bt := t.b[p]
		if useDB {
			bt = t.db[p]
		}
		row := tmp[p*q2 : (p+1)*q2]
		for q := 0; q < t.qlen[p]; q++ {
			c := coef[t.perm[p][q]]
			if c == 0 {
				continue
			}
			if vertexException(p, q) {
				// eta1 factor is 1 (deriv 0): accumulate outside the
				// A-contraction.
				if !deriv1 {
					blas.Daxpy(q2, c, bt[q*q2:], 1, special, 1)
				}
				continue
			}
			blas.Daxpy(q2, c, bt[q*q2:], 1, row, 1)
		}
	}
	// Outer contraction: phys[i][j] = sum_p aTab[p][i] tmp[p][j].
	blas.Dgemm(blas.Trans, blas.NoTrans, q1, q2, p1, 1, aTab, q1, tmp, q2, 0, phys, q2)
	// Broadcast the special row across eta1.
	for i := 0; i < q1; i++ {
		blas.Daxpy(q2, 1, special, 1, phys[i*q2:], 1)
	}
}

// iprod computes out[pq] = sum_ij aTab[p][i] B~_pq(eta2_j) f[i][j]
// (the adjoint of bwd).
func (t *tensorTri) iprod(f []float64, aTab []float64, useDB bool, deriv1 bool, out []float64) {
	p1, q1, q2 := t.p1, t.q1, t.q2
	// S[p][j] = sum_i aTab[p][i] f[i][j].
	s := make([]float64, p1*q2)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, p1, q2, q1, 1, aTab, q1, f, q2, 0, s, q2)
	// Column sums of f for the special (constant-in-eta1) mode.
	var colSum []float64
	for p := 0; p < p1; p++ {
		bt := t.b[p]
		if useDB {
			bt = t.db[p]
		}
		row := s[p*q2 : (p+1)*q2]
		for q := 0; q < t.qlen[p]; q++ {
			if vertexException(p, q) {
				if deriv1 {
					continue // d/deta1 of a constant is zero
				}
				if colSum == nil {
					colSum = make([]float64, q2)
					for i := 0; i < q1; i++ {
						blas.Daxpy(q2, 1, f[i*q2:], 1, colSum, 1)
					}
				}
				out[t.perm[p][q]] = blas.Ddot(q2, bt[q*q2:], 1, colSum, 1)
				continue
			}
			out[t.perm[p][q]] = blas.Ddot(q2, bt[q*q2:], 1, row, 1)
		}
	}
}
