package basis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nektar/internal/blas"
)

func TestTensorAvailability(t *testing.T) {
	for _, shape := range []Shape{Quad, Tri, Hex} {
		if !NewRef(shape, 4).Tensor() {
			t.Fatalf("%v must have the sum-factorized path", shape)
		}
	}
}

func TestTensorTriMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, p := range []int{1, 2, 4, 7} {
		r := NewRef(Tri, p)
		coef := make([]float64, r.NModes)
		for i := range coef {
			coef[i] = rng.NormFloat64()
		}
		a := make([]float64, r.NQuad)
		b := make([]float64, r.NQuad)
		r.BackwardTransform(coef, a)
		matrixBwd(r, coef, b)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-10 {
				t.Fatalf("p=%d bwd q=%d: %v vs %v", p, i, a[i], b[i])
			}
		}
		for d := 0; d < 2; d++ {
			r.BwdTransDeriv(d, coef, a)
			blas.Dgemv(blas.Trans, r.NModes, r.NQuad, 1, r.D[d], r.NQuad, coef, 1, 0, b, 1)
			for i := range a {
				if math.Abs(a[i]-b[i]) > 1e-8*(1+math.Abs(b[i])) {
					t.Fatalf("p=%d deriv d=%d q=%d: %v vs %v", p, d, i, a[i], b[i])
				}
			}
		}
		f := make([]float64, r.NQuad)
		for i := range f {
			f[i] = rng.NormFloat64()
		}
		oa := make([]float64, r.NModes)
		ob := make([]float64, r.NModes)
		r.IProductPhys(f, oa)
		blas.Dgemv(blas.NoTrans, r.NModes, r.NQuad, 1, r.B, r.NQuad, f, 1, 0, ob, 1)
		for i := range oa {
			if math.Abs(oa[i]-ob[i]) > 1e-9 {
				t.Fatalf("p=%d iprod m=%d: %v vs %v", p, i, oa[i], ob[i])
			}
		}
		for d := 0; d < 2; d++ {
			copy(oa, ob)
			oc := append([]float64(nil), ob...)
			r.IProductDerivAdd(d, 0.6, f, oa)
			blas.Dgemv(blas.NoTrans, r.NModes, r.NQuad, 0.6, r.D[d], r.NQuad, f, 1, 1, oc, 1)
			for i := range oa {
				if math.Abs(oa[i]-oc[i]) > 1e-8*(1+math.Abs(oc[i])) {
					t.Fatalf("p=%d iprodderiv d=%d m=%d: %v vs %v", p, d, i, oa[i], oc[i])
				}
			}
		}
	}
}

func TestTensor3MatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, p := range []int{1, 2, 4} {
		r := NewRef(Hex, p)
		coef := make([]float64, r.NModes)
		for i := range coef {
			coef[i] = rng.NormFloat64()
		}
		// Backward transform.
		a := make([]float64, r.NQuad)
		b := make([]float64, r.NQuad)
		r.BackwardTransform(coef, a)
		matrixBwd(r, coef, b)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-10 {
				t.Fatalf("p=%d bwd q=%d: %v vs %v", p, i, a[i], b[i])
			}
		}
		// Parametric derivatives.
		for d := 0; d < 3; d++ {
			r.BwdTransDeriv(d, coef, a)
			blas.Dgemv(blas.Trans, r.NModes, r.NQuad, 1, r.D[d], r.NQuad, coef, 1, 0, b, 1)
			for i := range a {
				if math.Abs(a[i]-b[i]) > 1e-9 {
					t.Fatalf("p=%d deriv d=%d q=%d: %v vs %v", p, d, i, a[i], b[i])
				}
			}
		}
		// Inner products.
		f := make([]float64, r.NQuad)
		for i := range f {
			f[i] = rng.NormFloat64()
		}
		oa := make([]float64, r.NModes)
		ob := make([]float64, r.NModes)
		r.IProductPhys(f, oa)
		blas.Dgemv(blas.NoTrans, r.NModes, r.NQuad, 1, r.B, r.NQuad, f, 1, 0, ob, 1)
		for i := range oa {
			if math.Abs(oa[i]-ob[i]) > 1e-9 {
				t.Fatalf("p=%d iprod m=%d: %v vs %v", p, i, oa[i], ob[i])
			}
		}
		for d := 0; d < 3; d++ {
			copy(oa, ob)
			oc := append([]float64(nil), ob...)
			r.IProductDerivAdd(d, 1.3, f, oa)
			blas.Dgemv(blas.NoTrans, r.NModes, r.NQuad, 1.3, r.D[d], r.NQuad, f, 1, 1, oc, 1)
			for i := range oa {
				if math.Abs(oa[i]-oc[i]) > 1e-9 {
					t.Fatalf("p=%d iprodderiv d=%d m=%d: %v vs %v", p, d, i, oa[i], oc[i])
				}
			}
		}
	}
}

// matrixBwd is the reference (tabulated-matrix) backward transform.
func matrixBwd(r *Ref, coef, phys []float64) {
	blas.Dgemv(blas.Trans, r.NModes, r.NQuad, 1, r.B, r.NQuad, coef, 1, 0, phys, 1)
}

func TestTensorBackwardMatchesMatrix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Intn(7) + 1
		r := NewRef(Quad, p)
		coef := make([]float64, r.NModes)
		for i := range coef {
			coef[i] = rng.NormFloat64()
		}
		a := make([]float64, r.NQuad)
		b := make([]float64, r.NQuad)
		r.BackwardTransform(coef, a) // tensor path
		matrixBwd(r, coef, b)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-11 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTensorDerivMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []int{1, 3, 6} {
		r := NewRef(Quad, p)
		coef := make([]float64, r.NModes)
		for i := range coef {
			coef[i] = rng.NormFloat64()
		}
		for d := 0; d < 2; d++ {
			a := make([]float64, r.NQuad)
			b := make([]float64, r.NQuad)
			r.BwdTransDeriv(d, coef, a)
			blas.Dgemv(blas.Trans, r.NModes, r.NQuad, 1, r.D[d], r.NQuad, coef, 1, 0, b, 1)
			for i := range a {
				if math.Abs(a[i]-b[i]) > 1e-10 {
					t.Fatalf("p=%d d=%d q=%d: %v vs %v", p, d, i, a[i], b[i])
				}
			}
		}
	}
}

func TestTensorIProductMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, p := range []int{2, 5} {
		r := NewRef(Quad, p)
		f := make([]float64, r.NQuad)
		for i := range f {
			f[i] = rng.NormFloat64()
		}
		a := make([]float64, r.NModes)
		b := make([]float64, r.NModes)
		r.IProductPhys(f, a)
		blas.Dgemv(blas.NoTrans, r.NModes, r.NQuad, 1, r.B, r.NQuad, f, 1, 0, b, 1)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-10 {
				t.Fatalf("p=%d m=%d: %v vs %v", p, i, a[i], b[i])
			}
		}
		// Derivative inner product accumulates on top of existing
		// content with a scale factor.
		copy(a, b)
		c := append([]float64(nil), b...)
		for d := 0; d < 2; d++ {
			r.IProductDerivAdd(d, 0.7, f, a)
			blas.Dgemv(blas.NoTrans, r.NModes, r.NQuad, 0.7, r.D[d], r.NQuad, f, 1, 1, c, 1)
		}
		for i := range a {
			if math.Abs(a[i]-c[i]) > 1e-9 {
				t.Fatalf("deriv iproduct p=%d m=%d: %v vs %v", p, i, a[i], c[i])
			}
		}
	}
}

func TestTriFallbackPathsStillWork(t *testing.T) {
	// The same API stays finite on triangles through the factorized
	// path.
	r := NewRef(Tri, 4)
	coef := make([]float64, r.NModes)
	coef[0] = 1
	phys := make([]float64, r.NQuad)
	r.BwdTransDeriv(0, coef, phys)
	out := make([]float64, r.NModes)
	r.IProductPhys(phys, out)
	r.IProductDerivAdd(1, 1, phys, out)
	// No assertion beyond "runs and stays finite".
	for _, v := range out {
		if math.IsNaN(v) {
			t.Fatal("NaN in fallback path")
		}
	}
}
