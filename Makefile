GO ?= go

.PHONY: check build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The simulator runs one goroutine per rank; everything must stay
# race-detector clean. This is the full gate a PR must pass.
race:
	$(GO) test -race ./...

check: build vet race
