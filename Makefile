GO ?= go
GOFMT ?= gofmt

.PHONY: check build vet fmt test race bench-baseline bench-ckpt bench-simnet bench-adapt bench-farm bench-spectral bench-fft race-ckpt race-simnet race-sched-single race-sched-multi race-policy race-farm race-spectral

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail when any file needs reformatting; print the offenders.
fmt:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The simulator runs one goroutine per rank; everything must stay
# race-detector clean. This is the full gate a PR must pass.
race:
	$(GO) test -race ./...

# Regenerate the committed engine-overhead baseline (BENCH_engine.json
# at the repo root). Run after intentional engine cost changes and
# commit the diff.
bench-baseline:
	BENCH_BASELINE=1 $(GO) test ./internal/bench -run TestWriteEngineBaseline -count=1 -v

# Regenerate the committed checkpoint-store baseline (BENCH_ckpt.json
# at the repo root). Run after intentional store/writer changes and
# commit the diff.
bench-ckpt:
	BENCH_CKPT=1 $(GO) test ./internal/bench -run TestWriteCkptBaseline -count=1 -v

# The async writer is the only real host-side concurrency in the repo
# besides the parallel simnet scheduler; hammer it under the race
# detector beyond the single pass `race` gives.
race-ckpt:
	$(GO) test -race -count=2 ./internal/ckpt

# Force the host-parallel simnet scheduler (SchedAuto falls back to
# serial on one core) and put every layer that runs rank goroutines —
# the simulator itself, the MPI layer, all three solvers, faults, and
# the supervisor — under the race detector.
race-simnet:
	NEKTAR_SIMNET_SCHED=parallel $(GO) test -race -count=1 \
		./internal/simnet ./internal/mpi ./internal/fault \
		./internal/core ./internal/supervisor ./internal/bench

# The scheduler-equivalence suites (serial vs conservative-parallel
# differential, relaxed statistical equivalence, resolver validation,
# P=2048 capacity) must hold on both a single-core budget — where auto
# falls back to serial and relaxed still has to make progress — and a
# multi-core one, where the conservative scheduler must stay
# bit-identical while goroutines genuinely interleave. Both pins run
# race-enabled.
race-sched-single:
	GOMAXPROCS=1 $(GO) test -race -count=1 \
		-run 'Scheduler|Relaxed|ManyRanks' ./internal/simnet ./internal/mpi
race-sched-multi:
	GOMAXPROCS=4 $(GO) test -race -count=1 \
		-run 'Scheduler|Relaxed|ManyRanks' ./internal/simnet ./internal/mpi

# Regenerate the committed scheduler-speedup baseline
# (BENCH_simnet.json at the repo root), including the relaxed-scheduler
# capacity sweep to P=1024. The speedups only mean something relative
# to the recorded GOMAXPROCS/core count; a 1-core host is refused
# unless BENCH_SIMNET_FORCE=1 is also set.
bench-simnet:
	BENCH_SIMNET=1 $(GO) test ./internal/bench -run TestWriteSimnetBaseline -count=1 -v -timeout 30m

# Regenerate the committed adaptive-resilience baseline
# (BENCH_adapt.json at the repo root): the fault-swept differential of
# the adaptive policy against the static checkpoint-cadence sweep. The
# run enforces the acceptance bars (within 5% of the best static in
# every cell, >= 20% better than the worst in at least one).
bench-adapt:
	BENCH_ADAPT=1 $(GO) test ./internal/bench -run TestWriteAdaptBaseline -count=1 -v

# The adaptive-resilience layer (estimator, cadence controller, writer
# selection, escalation ladder) runs inside every rank goroutine and
# the supervisor's monitor; keep it race-clean under repetition.
race-policy:
	$(GO) test -race -count=2 ./internal/policy ./internal/supervisor

# Regenerate the committed job-farm chaos baseline (BENCH_farm.json at
# the repo root): the full paper campaign — thousands of jobs, >= 20
# daemon SIGKILLs — with the zero-loss / zero-dup / bit-identity audit
# enforced.
bench-farm:
	BENCH_FARM=1 $(GO) test ./internal/bench -run TestWriteFarmBaseline -count=1 -v

# The farm daemon runs a worker pool, retry timers, an HTTP server, and
# chaos injection against one mutex-guarded state machine; hammer it
# (and the quick subprocess chaos campaign) under the race detector.
race-farm:
	$(GO) test -race -count=1 ./internal/farm \
		&& $(GO) test -race -count=1 ./internal/bench -run TestFarmbenchChaos

# The pseudospectral solvers run per-thread flop recorders and the
# distributed transpose inside rank goroutines; force the parallel
# scheduler and put the package plus its transform substrate under the
# race detector.
race-spectral:
	NEKTAR_SIMNET_SCHED=parallel $(GO) test -race -count=1 \
		./internal/spectral ./internal/fft

# Regenerate the committed serial-vs-slab spectral baseline
# (BENCH_spectral.json at the repo root). Bit-identity between the
# serial reference and both scheduler runs is enforced before any
# number is written; a 1-core host is refused unless
# BENCH_SPECTRAL_FORCE=1 is also set.
bench-spectral:
	BENCH_SPECTRAL=1 $(GO) test ./internal/bench -run TestWriteSpectralBaseline -count=1 -v -timeout 30m

# Microbenchmark the FFT kernels: the legacy all-radix-2 ladder vs the
# mixed-radix Stockham planner at matched lengths, and the 2N-vs-3N/2
# de-aliasing row comparison behind the padded-pipeline speedup. Attach
# a profile with ARGS="-cpuprofile fft.pprof".
bench-fft:
	$(GO) run ./cmd/fftbench $(ARGS)

check: build vet fmt race race-ckpt race-simnet race-policy race-farm race-spectral
