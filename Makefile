GO ?= go
GOFMT ?= gofmt

.PHONY: check build vet fmt test race bench-baseline bench-ckpt race-ckpt

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail when any file needs reformatting; print the offenders.
fmt:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The simulator runs one goroutine per rank; everything must stay
# race-detector clean. This is the full gate a PR must pass.
race:
	$(GO) test -race ./...

# Regenerate the committed engine-overhead baseline (BENCH_engine.json
# at the repo root). Run after intentional engine cost changes and
# commit the diff.
bench-baseline:
	BENCH_BASELINE=1 $(GO) test ./internal/bench -run TestWriteEngineBaseline -count=1 -v

# Regenerate the committed checkpoint-store baseline (BENCH_ckpt.json
# at the repo root). Run after intentional store/writer changes and
# commit the diff.
bench-ckpt:
	BENCH_CKPT=1 $(GO) test ./internal/bench -run TestWriteCkptBaseline -count=1 -v

# The async writer is the only real host-side concurrency in the repo;
# hammer it under the race detector beyond the single pass `race` gives.
race-ckpt:
	$(GO) test -race -count=2 ./internal/ckpt

check: build vet fmt race race-ckpt
