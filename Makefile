GO ?= go
GOFMT ?= gofmt

.PHONY: check build vet fmt test race bench-baseline

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail when any file needs reformatting; print the offenders.
fmt:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The simulator runs one goroutine per rank; everything must stay
# race-detector clean. This is the full gate a PR must pass.
race:
	$(GO) test -race ./...

# Regenerate the committed engine-overhead baseline (BENCH_engine.json
# at the repo root). Run after intentional engine cost changes and
# commit the diff.
bench-baseline:
	BENCH_BASELINE=1 $(GO) test ./internal/bench -run TestWriteEngineBaseline -count=1 -v

check: build vet fmt race
