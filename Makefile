GO ?= go
GOFMT ?= gofmt

.PHONY: check build vet fmt test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail when any file needs reformatting; print the offenders.
fmt:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The simulator runs one goroutine per rank; everything must stay
# race-detector clean. This is the full gate a PR must pass.
race:
	$(GO) test -race ./...

check: build vet fmt race
