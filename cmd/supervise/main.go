// Command supervise demonstrates the self-healing cluster runtime: a
// Nektar solver runs under automatic fault management (heartbeat
// failure detection, hot-spare replacement, checkpoint rollback) while
// a fault campaign kills one node and freezes another. The report
// shows each detected failure, the spare it consumed, the recovery
// cost, and verifies the recovered trajectory is bit-identical to a
// fault-free reference.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nektar/internal/bench"
	"nektar/internal/cliutil"
)

func main() {
	cfg := bench.PaperSupervise
	machine := flag.String("machine", cfg.Machine, "simulated machine (see internal/machine)")
	solver := flag.String("solver", cfg.Solver, "solver to supervise: nsf or nsale")
	procs := flag.Int("procs", cfg.Procs, "solver rank count (power of two for nsf)")
	spares := flag.Int("spares", cfg.Spares, "hot-spare node count")
	steps := flag.Int("steps", cfg.Steps, "solver steps")
	every := flag.Int("every", cfg.CheckpointEvery, "checkpoint interval, steps (0 disables)")
	crashFrac := flag.Float64("crash-frac", cfg.CrashFrac, "crash node 1 at this fraction of the reference wall, in [0,1) (0 disables)")
	stallFrac := flag.Float64("stall-frac", cfg.StallFrac, "freeze node 0 at this fraction of the reference wall, in [0,1) (0 disables)")
	seed := flag.Int64("seed", cfg.Seed, "fault-plan seed")
	ckptDir := flag.String("ckptdir", "", "back the faulted campaign's checkpoints with a durable on-disk store here (directory must start empty)")
	adapt := flag.String("adapt", "static", "resilience policy for the campaign: static, pinned, or adaptive")
	mtbf := flag.String("mtbf", "", "per-node MTBF prior in hours of virtual time (required by -adapt adaptive)")
	flag.Parse()

	cfg.Machine = *machine
	cfg.Solver = *solver
	cfg.Procs = *procs
	cfg.Spares = *spares
	cfg.Steps = *steps
	cfg.CheckpointEvery = *every
	cfg.CrashFrac = *crashFrac
	cfg.StallFrac = *stallFrac
	cfg.Seed = *seed
	cfg.CkptDir = *ckptDir
	cfg.Policy = *adapt

	// Validate up front so a bad flag fails with an actionable message
	// instead of a mid-run panic.
	if _, err := cliutil.PolicyMode(*adapt); err != nil {
		fmt.Fprintf(os.Stderr, "supervise: %v\n", err)
		os.Exit(2)
	}
	if *mtbf != "" {
		hours, err := cliutil.ParseMTBFHours(*mtbf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "supervise: %v\n", err)
			os.Exit(2)
		}
		if len(hours) != 1 {
			fmt.Fprintf(os.Stderr, "supervise: -mtbf takes exactly one value, got %d\n", len(hours))
			os.Exit(2)
		}
		cfg.MTBFHours = hours[0]
	}
	if err := bench.ValidateSupervise(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "supervise: %v\n", err)
		os.Exit(2)
	}

	tbl, err := bench.RunSupervise(cfg)
	if err != nil {
		if tbl != nil {
			tbl.Write(os.Stdout)
		}
		log.Fatal(err)
	}
	tbl.Write(os.Stdout)
}
