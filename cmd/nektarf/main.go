// Command nektarf regenerates the paper's Table 2 (Nektar-F
// CPU/wall-clock per step across machines and processor counts) and
// Figures 13-14 (per-stage CPU vs wall-clock breakdowns).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"nektar/internal/bench"
	"nektar/internal/cliutil"
)

func main() {
	machines := flag.String("machines", strings.Join(bench.PaperFourier.Machines, ","), "comma-separated machine list")
	procs := flag.String("procs", "2,4,8,16,32,64,128", "comma-separated processor counts")
	steps := flag.Int("steps", bench.PaperFourier.Steps, "measured steps")
	stages := flag.Bool("stages", false, "print Figures 13-14 stage breakdowns")
	trace := flag.String("trace", "", "write the engine's per-step JSONL event stream (all cells, all ranks) to this file")
	ckptDir := flag.String("ckptdir", "", "write per-cell durable checkpoints under this directory (simulated write cost)")
	ckptEvery := flag.Int("ckpt-every", 0, "checkpoint cadence in steps (requires -ckptdir)")
	flag.Parse()

	cfg := bench.PaperFourier
	cfg.Machines = strings.Split(*machines, ",")
	cfg.Steps = *steps
	tracer, closeTrace, err := cliutil.Tracer(*trace)
	if err != nil {
		log.Fatal(err)
	}
	defer closeTrace()
	cfg.Trace = tracer
	if err := cliutil.CheckpointFlags(*ckptDir, *ckptEvery); err != nil {
		log.Fatal(err)
	}
	cfg.CkptDir, cfg.CkptEvery = *ckptDir, *ckptEvery
	cfg.Procs = nil
	for _, p := range strings.Split(*procs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			log.Fatal(err)
		}
		cfg.Procs = append(cfg.Procs, v)
	}
	res, err := bench.RunFourier(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bench.Table2(res, cfg.Procs, cfg.Machines).Write(os.Stdout)
	if *stages {
		for _, cell := range [][2]interface{}{
			{"NCSA", 4}, {"SP2-Silver", 4}, {"RoadRunner-eth", 4}, {"RoadRunner-myr", 4},
		} {
			out, err := bench.Fig1314(res, cell[0].(string), cell[1].(int))
			if err != nil {
				continue // machine not in this run
			}
			fmt.Println()
			fmt.Print(out)
		}
	}
}
