// Command spectral runs the slab-parallel pseudospectral 2D
// turbulence solvers: decaying by default, white-noise-forced with
// -forced. A one-rank run (-procs 1) executes directly on the host
// under the engine loop's watchdog; -procs > 1 runs the slab
// decomposition on a simulated machine, with the distributed transpose
// crossing its priced interconnect. Online energy-spectrum and
// dissipation diagnostics stream as JSONL trace events to -trace (or
// are aggregated into the breakdown table printed at exit).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"nektar/internal/cliutil"
	"nektar/internal/engine"
	"nektar/internal/machine"
	"nektar/internal/mpi"
	"nektar/internal/report"
	"nektar/internal/simnet"
	"nektar/internal/spectral"
)

func main() {
	n := flag.Int("n", 32, "grid size per dimension (>= 8, divisible by 4, only prime factors 2/3/5: 8, 12, 16, 20, 24, 32, 36, ...)")
	re := flag.Float64("re", 500, "Reynolds number (viscosity is 1/Re)")
	dt := flag.Float64("dt", 2e-3, "time step")
	steps := flag.Int("steps", 50, "steps to run")
	seed := flag.Uint64("seed", 1, "phase/forcing seed")
	forced := flag.Bool("forced", false, "run the white-noise-forced variant instead of decay")
	forceLo := flag.Int("force-lo", 3, "forcing band: lowest shell (with -forced)")
	forceHi := flag.Int("force-hi", 5, "forcing band: highest shell (with -forced)")
	forceAmp := flag.Float64("force-amp", 0.1, "forcing injection amplitude (with -forced)")
	procs := flag.Int("procs", 1, "slab ranks; must divide -n (1 = serial host run)")
	mach := flag.String("machine", "Muses", "simulated machine for -procs > 1 (see internal/machine)")
	diagEvery := flag.Int("diag-every", 10, "spectrum/dissipation event cadence, steps (0 disables)")
	trace := flag.String("trace", "", "write the JSONL event stream to this file")
	flag.Parse()

	if err := cliutil.SpectralFlags(*n, *re, *forced, *forceLo, *forceHi); err != nil {
		fmt.Fprintf(os.Stderr, "spectral: %v\n", err)
		os.Exit(2)
	}
	if *procs < 1 || *n%*procs != 0 {
		fmt.Fprintf(os.Stderr, "spectral: -procs %d must be a positive divisor of -n %d\n",
			*procs, *n)
		os.Exit(2)
	}
	// The decaying variant runs the exact-3/2 de-aliasing pipeline, whose
	// padded grid also slab-decomposes over the ranks.
	if m := 3 * *n / 2; !*forced && m%*procs != 0 {
		fmt.Fprintf(os.Stderr, "spectral: -procs %d must also divide the de-aliasing grid M = 3n/2 = %d (the decaying solver's padded slabs)\n",
			*procs, m)
		os.Exit(2)
	}

	cfg := spectral.Config{
		N: *n, Re: *re, Dt: *dt, Seed: *seed, DiagEvery: *diagEvery,
		ForceLo: *forceLo, ForceHi: *forceHi, ForceAmp: *forceAmp,
	}
	mk := spectral.NewTurb2D
	variant := "decaying"
	if *forced {
		mk = spectral.NewForced
		variant = "forced"
	}

	// With no -trace the stream lands in a buffer and only the offline
	// breakdown is printed; with -trace the raw JSONL is the artifact.
	var buf bytes.Buffer
	tracer := engine.NewTracer(&buf)
	closeTrace := func() error { return nil }
	if *trace != "" {
		var err error
		tracer, closeTrace, err = cliutil.Tracer(*trace)
		if err != nil {
			log.Fatalf("spectral: %v", err)
		}
	}

	if *procs == 1 {
		s, err := mk(cfg, nil, nil)
		if err != nil {
			log.Fatalf("spectral: %v", err)
		}
		s.Trace = tracer
		loop := engine.Loop{Solver: s, Steps: *steps, Trace: tracer}
		if _, err := loop.Run(); err != nil {
			log.Fatalf("spectral: %v", err)
		}
	} else {
		m, err := machine.ByName(*mach)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spectral: %v\n", err)
			os.Exit(2)
		}
		_, _, err = simnet.Run(*procs, m.Net, func(nd *simnet.Node) {
			s, err := mk(cfg, mpi.World(nd), &m.CPU)
			if err != nil {
				panic(err)
			}
			if nd.Rank == 0 {
				s.Trace = tracer
			}
			for i := 0; i < *steps; i++ {
				s.Step()
			}
		})
		if err != nil {
			log.Fatalf("spectral: %v", err)
		}
	}
	if err := closeTrace(); err != nil {
		log.Fatalf("spectral: %v", err)
	}

	if *trace == "" {
		evs, err := engine.ReadEvents(bytes.NewReader(buf.Bytes()))
		if err != nil {
			log.Fatalf("spectral: %v", err)
		}
		report.TraceBreakdown(evs, fmt.Sprintf(
			"Spectral: %s 2D turbulence — N=%d, Re=%g, P=%d, %d steps, diag every %d (%d events)",
			variant, *n, *re, *procs, *steps, *diagEvery, len(evs))).Write(os.Stdout)
	} else {
		fmt.Printf("spectral: %s run done: N=%d Re=%g P=%d steps=%d; events in %s\n",
			variant, *n, *re, *procs, *steps, *trace)
	}
}
