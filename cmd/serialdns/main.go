// Command serialdns regenerates the paper's Table 1 (serial bluff-body
// CPU time per step on every machine) and Figure 12 (per-stage
// breakdown within one time step).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nektar/internal/bench"
)

func main() {
	nt := flag.Int("nt", bench.PaperSerial.Nt, "O-grid sectors")
	nr := flag.Int("nr", bench.PaperSerial.Nr, "O-grid rings")
	order := flag.Int("order", bench.PaperSerial.Order, "polynomial order")
	steps := flag.Int("steps", bench.PaperSerial.Steps, "measured steps")
	stages := flag.Bool("stages", false, "print Figure 12 stage breakdowns")
	flag.Parse()

	res, _, err := bench.RunSerial(bench.SerialConfig{Nt: *nt, Nr: *nr, Order: *order, Steps: *steps})
	if err != nil {
		log.Fatal(err)
	}
	bench.Table1(res).Write(os.Stdout)
	if *stages {
		out, err := bench.Fig12(res, "Onyx2", "Muses")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(out)
	}
}
