// Command serialdns regenerates the paper's Table 1 (serial bluff-body
// CPU time per step on every machine) and Figure 12 (per-stage
// breakdown within one time step).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nektar/internal/bench"
	"nektar/internal/cliutil"
)

func main() {
	nt := flag.Int("nt", bench.PaperSerial.Nt, "O-grid sectors")
	nr := flag.Int("nr", bench.PaperSerial.Nr, "O-grid rings")
	order := flag.Int("order", bench.PaperSerial.Order, "polynomial order")
	steps := flag.Int("steps", bench.PaperSerial.Steps, "measured steps")
	stages := flag.Bool("stages", false, "print Figure 12 stage breakdowns")
	trace := flag.String("trace", "", "write the engine's per-step JSONL event stream to this file")
	ckptDir := flag.String("ckptdir", "", "write durable checkpoints into this directory (async background writer)")
	ckptEvery := flag.Int("ckpt-every", 0, "checkpoint cadence in steps (requires -ckptdir)")
	flag.Parse()

	cfg := bench.SerialConfig{Nt: *nt, Nr: *nr, Order: *order, Steps: *steps}
	tracer, closeTrace, err := cliutil.Tracer(*trace)
	if err != nil {
		log.Fatal(err)
	}
	defer closeTrace()
	cfg.Trace = tracer
	if err := cliutil.CheckpointFlags(*ckptDir, *ckptEvery); err != nil {
		log.Fatal(err)
	}
	cfg.CkptDir, cfg.CkptEvery = *ckptDir, *ckptEvery
	res, _, err := bench.RunSerial(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bench.Table1(res).Write(os.Stdout)
	if *stages {
		out, err := bench.Fig12(res, "Onyx2", "Muses")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(out)
	}
}
