// Command basisinfo prints the method illustrations of the paper's
// Figures 9 and 10: the boundary-first modal ordering of the
// triangular and quadrilateral expansions and the sparsity structure
// of the elemental Laplacian.
package main

import (
	"flag"
	"fmt"
	"math"

	"nektar/internal/basis"
	"nektar/internal/mesh"
)

func main() {
	order := flag.Int("order", 4, "polynomial order")
	sparsity := flag.Bool("sparsity", false, "print the Figure 10 Laplacian sparsity patterns")
	flag.Parse()

	for _, shape := range []basis.Shape{basis.Tri, basis.Quad} {
		ref := basis.NewRef(shape, *order)
		fmt.Printf("Figure 9: %s expansion ordering at order %d (%d modes, %d boundary)\n",
			shape, *order, ref.NModes, ref.NBnd)
		for mi, m := range ref.Modes {
			fmt.Printf("  mode %2d: (p,q)=(%d,%d) %-8s entity %d\n", mi, m.P, m.Q, m.Type, m.Entity)
		}
		fmt.Println()
	}
	if !*sparsity {
		return
	}
	for _, gen := range []struct {
		name  string
		verts [][3]float64
		shape basis.Shape
		conn  []int
	}{
		{"triangular", [][3]float64{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}}, basis.Tri, []int{0, 1, 2}},
		{"quadrilateral", [][3]float64{{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0}}, basis.Quad, []int{0, 1, 2, 3}},
	} {
		m, err := mesh.New(*order, gen.verts, []mesh.ElemSpec{{Shape: gen.shape, Verts: gen.conn}})
		if err != nil {
			panic(err)
		}
		lap := m.Elems[0].Laplacian()
		n := m.Elems[0].Ref.NModes
		fmt.Printf("Figure 10: elemental Laplacian structure, standard modal %s expansion, order %d\n", gen.name, *order)
		fmt.Printf("(boundary modes first; '#' nonzero, '.' zero)\n")
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(lap[i*n+j]) > 1e-10 {
					fmt.Print("#")
				} else {
					fmt.Print(".")
				}
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
