// Command farmbench runs the job-farm chaos campaign: a real farmd
// subprocess (this binary re-exec'd) is flooded with deterministic
// jobs while being SIGKILLed on a cadence, then audited — zero lost
// acknowledged jobs, zero duplicate results, bit-identical trajectories
// against uninterrupted reference runs — with jobs/s, latency, and
// recovery-time measurements.
//
//	farmbench            # the recorded paper campaign (~2000 jobs, 20 kills)
//	farmbench -quick     # the tier-1 variant
//	farmbench -json      # emit the BENCH_farm.json schema instead of the table
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"nektar/internal/bench"
	"nektar/internal/farm"
)

func main() {
	farm.MaybeDaemon() // this binary doubles as the daemon image
	quick := flag.Bool("quick", false, "run the small campaign")
	asJSON := flag.Bool("json", false, "write the result as JSON to stdout")
	kills := flag.Int("kills", 0, "override the daemon SIGKILL count")
	jobs := flag.Int("jobs", 0, "override the job count")
	flag.Parse()

	cfg := bench.PaperFarmbench
	if *quick {
		cfg = bench.QuickFarmbench
	}
	if *kills > 0 {
		cfg.DaemonKills = *kills
	}
	if *jobs > 0 {
		cfg.Jobs = *jobs
	}
	res, tbl, err := bench.RunFarmbench(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(buf))
	} else {
		tbl.Write(os.Stdout)
	}
	if res.LostAcked != 0 || res.DupResults != 0 || res.HashMismatches != 0 || res.FailedJobs != 0 {
		log.Fatalf("crash-safety audit FAILED: lost=%d dup=%d mismatch=%d failed=%d",
			res.LostAcked, res.DupResults, res.HashMismatches, res.FailedJobs)
	}
}
