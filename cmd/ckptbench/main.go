// Command ckptbench measures what durable checkpointing costs. The
// host-side table drives the same serial NS2D run with no durability,
// a synchronous writer, and the async double-buffered writer at an
// equal cadence, separating exposed from hidden write time. The
// virtual-side table writes a Nektar-F state through the simulated
// cluster's cost model as node-local restart files vs striped 1/P-th
// shards, pricing the striping penalty per machine — the quantified
// version of the paper's choice of local restart files over a parallel
// file system.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"nektar/internal/bench"
	"nektar/internal/cliutil"
)

func main() {
	nt := flag.Int("nt", bench.PaperCkptbench.Nt, "NS2D O-grid sectors (host-side probe)")
	nr := flag.Int("nr", bench.PaperCkptbench.Nr, "NS2D O-grid rings")
	order := flag.Int("order", bench.PaperCkptbench.Order, "polynomial order")
	steps := flag.Int("steps", bench.PaperCkptbench.Steps, "measured steps")
	every := flag.Int("every", bench.PaperCkptbench.Every, "checkpoint cadence, steps")
	dir := flag.String("dir", "", "root the host-side stores here (default: a temp dir, removed afterwards)")
	machines := flag.String("machines", strings.Join(bench.PaperCkptbench.Machines, ","), "comma-separated machine list for the striping table")
	procs := flag.Int("procs", bench.PaperCkptbench.Procs, "rank count for the striping table (power of two)")
	disk := flag.Float64("disk", bench.PaperCkptbench.DiskMBs, "node-local disk bandwidth, MB/s")
	prof := cliutil.ProfileFlags(flag.CommandLine)
	flag.Parse()

	cfg := bench.CkptbenchConfig{
		Nt: *nt, Nr: *nr, Order: *order,
		Steps: *steps, Every: *every,
		Dir:      *dir,
		Machines: strings.Split(*machines, ","),
		Procs:    *procs,
		DiskMBs:  *disk,
	}

	// Validate up front so a bad flag fails with an actionable message
	// instead of a mid-run panic.
	if err := bench.ValidateCkptbench(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ckptbench: %v\n", err)
		os.Exit(2)
	}

	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "ckptbench: %v\n", err)
		os.Exit(2)
	}
	_, tables, err := bench.RunCkptbench(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := prof.Stop(); err != nil {
		log.Fatal(err)
	}
	for i, tbl := range tables {
		if i > 0 {
			fmt.Println()
		}
		tbl.Write(os.Stdout)
	}
}
