// Command blasbench regenerates the paper's kernel-level CPU figures
// (Figures 1-6): BLAS routine performance against working-set size on
// every modeled machine. With -native it instead measures the pure-Go
// BLAS of this repository on the host, playing the paper's "PC" role.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"nektar/internal/bench"
	"nektar/internal/blas"
	"nektar/internal/report"
)

func main() {
	kernel := flag.String("kernel", "all", "dcopy|daxpy|ddot|dgemv|dgemm|all")
	small := flag.Bool("small", false, "dgemm small-matrix regime (Figure 6)")
	native := flag.Bool("native", false, "measure the host natively instead of the models")
	flag.Parse()

	if *native {
		nativeBench(*kernel)
		return
	}
	figs := map[string]func() *report.Figure{
		"dcopy": bench.Fig1Dcopy,
		"daxpy": bench.Fig2Daxpy,
		"ddot":  bench.Fig3Ddot,
		"dgemv": bench.Fig4Dgemv,
		"dgemm": func() *report.Figure {
			if *small {
				return bench.Fig6DgemmSmall()
			}
			return bench.Fig5Dgemm()
		},
	}
	if *kernel == "all" {
		for _, k := range []string{"dcopy", "daxpy", "ddot", "dgemv", "dgemm"} {
			figs[k]().Write(os.Stdout)
			fmt.Println()
		}
		bench.Fig6DgemmSmall().Write(os.Stdout)
		return
	}
	f, ok := figs[*kernel]
	if !ok {
		log.Fatalf("unknown kernel %q", *kernel)
	}
	f().Write(os.Stdout)
}

// nativeBench times the repository's own BLAS on the host.
func nativeBench(kernel string) {
	fmt.Printf("# native host measurements (this machine plays the paper's PC role)\n")
	fmt.Printf("# kernel: %s\n", kernel)
	sizes := []int{512, 2048, 8192, 32768, 131072, 524288, 2097152}
	timeIt := func(f func(), minDur time.Duration) float64 {
		reps := 1
		for {
			t0 := time.Now()
			for i := 0; i < reps; i++ {
				f()
			}
			d := time.Since(t0)
			if d >= minDur {
				return d.Seconds() / float64(reps)
			}
			reps *= 4
		}
	}
	for _, bytes := range sizes {
		n := bytes / 8
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i%7) + 0.5
		}
		switch kernel {
		case "dcopy", "all":
			t := timeIt(func() { blas.Dcopy(n, x, 1, y, 1) }, 20*time.Millisecond)
			fmt.Printf("dcopy %8d bytes: %8.1f MB/s\n", bytes, float64(16*n)/t/1e6)
		}
		switch kernel {
		case "daxpy", "all":
			t := timeIt(func() { blas.Daxpy(n, 1.0001, x, 1, y, 1) }, 20*time.Millisecond)
			fmt.Printf("daxpy %8d bytes: %8.1f MFlop/s\n", bytes, float64(2*n)/t/1e6)
		}
		switch kernel {
		case "ddot", "all":
			t := timeIt(func() { _ = blas.Ddot(n, x, 1, y, 1) }, 20*time.Millisecond)
			fmt.Printf("ddot  %8d bytes: %8.1f MFlop/s\n", bytes, float64(2*n)/t/1e6)
		}
	}
	if kernel == "dgemm" || kernel == "all" {
		for _, n := range []int{4, 8, 16, 32, 64, 128, 256} {
			a := make([]float64, n*n)
			b := make([]float64, n*n)
			c := make([]float64, n*n)
			for i := range a {
				a[i] = float64(i%5) + 0.25
				b[i] = float64(i%3) + 0.75
			}
			t := timeIt(func() {
				blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
			}, 20*time.Millisecond)
			fmt.Printf("dgemm n=%4d: %8.1f MFlop/s\n", n, float64(2*n*n*n)/t/1e6)
		}
	}
}
