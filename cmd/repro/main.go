// Command repro runs the reproduction: every table and figure of the
// paper's evaluation section, written to stdout (or a directory with
// -outdir). With no arguments every experiment runs in order; naming
// experiments (e.g. "repro supervise trace") runs just those. Unknown
// names print the registered list. Budget-limited modes (-quick) skip
// the largest processor counts.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nektar/internal/bench"
	"nektar/internal/cliutil"
	"nektar/internal/engine"
	"nektar/internal/farm"
	"nektar/internal/report"
	"nektar/internal/spectral"
)

// experiment is one runnable section of the reproduction.
type experiment struct {
	name string
	desc string
	run  func(w io.Writer, quick bool) error
}

// experiments is the registry, in paper order. Names double as the
// CLI selectors and the -outdir file names.
var experiments = []experiment{
	{"fig1-6_kernels", "BLAS kernel figures on the priced machines", func(w io.Writer, quick bool) error {
		bench.Fig1Dcopy().Write(w)
		bench.Fig2Daxpy().Write(w)
		bench.Fig3Ddot().Write(w)
		bench.Fig4Dgemv().Write(w)
		bench.Fig5Dgemm().Write(w)
		bench.Fig6DgemmSmall().Write(w)
		return nil
	}},
	{"fig7_pingpong", "MPI ping-pong latency/bandwidth", func(w io.Writer, quick bool) error {
		lat, bw, err := bench.Fig7PingPong()
		if err != nil {
			return err
		}
		lat.Write(w)
		bw.Write(w)
		return nil
	}},
	{"fig8_alltoall", "MPI all-to-all exchange", func(w io.Writer, quick bool) error {
		for _, p := range []int{4, 8} {
			fig, err := bench.Fig8Alltoall(p)
			if err != nil {
				return err
			}
			fig.Write(w)
		}
		return nil
	}},
	{"table1_fig12_serial", "serial DNS: Table 1 + Figure 12", func(w io.Writer, quick bool) error {
		cfg := bench.PaperSerial
		if quick {
			cfg = bench.SerialConfig{Nt: 24, Nr: 6, Order: 6, Steps: 1}
		}
		res, _, err := bench.RunSerial(cfg)
		if err != nil {
			return err
		}
		bench.Table1(res).Write(w)
		txt, err := bench.Fig12(res, "Onyx2", "Muses")
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, txt)
		return nil
	}},
	{"table2_fig13-14_nektarf", "Nektar-F weak scaling: Table 2 + Figures 13-14", func(w io.Writer, quick bool) error {
		cfg := bench.PaperFourier
		if quick {
			cfg.Procs = []int{2, 4, 8, 16}
			cfg.Steps = 1
		}
		res, err := bench.RunFourier(cfg)
		if err != nil {
			return err
		}
		bench.Table2(res, cfg.Procs, cfg.Machines).Write(w)
		for _, cell := range []struct {
			m string
			p int
		}{{"NCSA", 4}, {"SP2-Silver", 4}, {"RoadRunner-eth", 4}, {"RoadRunner-myr", 4}} {
			txt, err := bench.Fig1314(res, cell.m, cell.p)
			if err != nil {
				return err
			}
			fmt.Fprintln(w)
			fmt.Fprint(w, txt)
		}
		return nil
	}},
	{"faultbench", "checkpoint-interval sweep + measured crash recovery", func(w io.Writer, quick bool) error {
		cfg := bench.PaperFaultbench
		if quick {
			cfg.Procs = 2
			cfg.ProbeNt, cfg.ProbeNr = 6, 2
			cfg.Order = 3
			cfg.Steps = 1
		}
		_, tbl, err := bench.RunFaultbench(cfg)
		if err != nil {
			return err
		}
		tbl.Write(w)
		demo, err := bench.RunFaultbenchRecovery(cfg, 1)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		demo.Write(w)
		return nil
	}},
	{"ckptbench", "durable checkpoint store: async vs sync, local vs striped", func(w io.Writer, quick bool) error {
		cfg := bench.PaperCkptbench
		if quick {
			cfg.Nt, cfg.Nr, cfg.Order = 12, 3, 4
			cfg.Steps = 6
			cfg.Procs = 2
		}
		_, tables, err := bench.RunCkptbench(cfg)
		if err != nil {
			return err
		}
		for i, tbl := range tables {
			if i > 0 {
				fmt.Fprintln(w)
			}
			tbl.Write(w)
		}
		return nil
	}},
	{"supervise", "self-healing runtime: crash+freeze campaign", func(w io.Writer, quick bool) error {
		cfg := bench.PaperSupervise
		if quick {
			cfg.Procs = 2
			cfg.Spares = 2
			cfg.Steps = 6
		}
		tbl, err := bench.RunSupervise(cfg)
		if tbl != nil {
			tbl.Write(w)
		}
		return err
	}},
	{"adaptbench", "adaptive resilience vs static checkpoint cadence, fault-swept", func(w io.Writer, quick bool) error {
		cfg := bench.PaperAdaptbench
		if quick {
			cfg = bench.QuickAdaptbench
		}
		res, tbl, err := bench.RunAdaptbench(cfg)
		if err != nil {
			return err
		}
		tbl.Write(w)
		fmt.Fprintf(w, "\nadaptive vs best static, worst cell: %+.1f%%; vs worst static, best cell: %.1f%% faster\n",
			100*(res.MaxVsBest-1), 100*res.MaxGainVsWorst)
		return nil
	}},
	{"trace", "engine per-step JSONL trace of a crash-recovery run", func(w io.Writer, quick bool) error {
		cfg := bench.PaperTrace
		if quick {
			cfg.Procs = 2
			cfg.CrashNode = 1
			cfg.Steps = 6
		}
		// The raw JSONL stream is the artifact; the breakdown table that
		// follows is internal/report's offline aggregation of it.
		var buf bytes.Buffer
		if _, err := bench.RunTrace(cfg, &buf); err != nil {
			return err
		}
		evs, err := engine.ReadEvents(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return err
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
		fmt.Fprintln(w)
		report.TraceBreakdown(evs, fmt.Sprintf(
			"Trace: engine event stream — %s, %s, P=%d, %d steps, ckpt every %d (%d events)",
			cfg.Machine, cfg.Workload, cfg.Procs, cfg.Steps, cfg.CheckpointEvery, len(evs))).Write(w)
		return nil
	}},
	{"farmbench", "job-farm chaos campaign: SIGKILL the daemon, audit the ledger", func(w io.Writer, quick bool) error {
		cfg := bench.PaperFarmbench
		if quick {
			cfg = bench.QuickFarmbench
		}
		res, tbl, err := bench.RunFarmbench(cfg)
		if err != nil {
			return err
		}
		tbl.Write(w)
		if res.LostAcked != 0 || res.DupResults != 0 || res.HashMismatches != 0 {
			return fmt.Errorf("farmbench: crash-safety audit failed: lost=%d dup=%d mismatch=%d",
				res.LostAcked, res.DupResults, res.HashMismatches)
		}
		return nil
	}},
	{"simbench", "simnet scheduler: host wall-clock, serial vs parallel", func(w io.Writer, quick bool) error {
		cfg := bench.PaperSimbench
		if quick {
			cfg = bench.QuickSimbench
		}
		_, tbl, err := bench.RunSimbench(cfg)
		if err != nil {
			return err
		}
		tbl.Write(w)
		return nil
	}},
	{"spectral", "pseudospectral turbulence: serial vs slab bit-identity + online spectra", func(w io.Writer, quick bool) error {
		cfg := bench.PaperSpectral
		if quick {
			cfg = bench.QuickSpectral
		}
		if err := cliutil.SpectralFlags(cfg.N, 500, true, 3, 5); err != nil {
			return err
		}
		sres, tbl, err := bench.RunSpectralBench(cfg)
		if err != nil {
			return err
		}
		tbl.Write(w)
		if sres.PadAB != nil {
			fmt.Fprintln(w)
			sres.PadAB.Table().Write(w)
		}
		// A short forced run with the tracer on, to show the online
		// spectrum/dissipation stream and its offline aggregation.
		var buf bytes.Buffer
		s, err := spectral.NewForced(spectral.Config{
			N: cfg.N, Re: 500, Dt: 2e-3, Seed: 33, DiagEvery: 2,
		}, nil, nil)
		if err != nil {
			return err
		}
		s.Trace = engine.NewTracer(&buf)
		loop := engine.Loop{Solver: s, Steps: 8, Trace: s.Trace}
		if _, err := loop.Run(); err != nil {
			return err
		}
		evs, err := engine.ReadEvents(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return err
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
		fmt.Fprintln(w)
		report.TraceBreakdown(evs, fmt.Sprintf(
			"Spectral trace: forced 2D turbulence event stream — N=%d, 8 steps, diag every 2 (%d events)",
			cfg.N, len(evs))).Write(w)
		return nil
	}},
	{"table3_fig15-16_nektarale", "Nektar-ALE flapping wing: Table 3 + Figures 15-16", func(w io.Writer, quick bool) error {
		cfg := bench.PaperALE
		if quick {
			cfg.Procs = []int{16, 32}
		}
		res, err := bench.RunALE(cfg)
		if err != nil {
			return err
		}
		bench.Table3(res, cfg.Procs, cfg.Machines).Write(w)
		for _, cell := range []struct {
			m string
			p int
		}{{"NCSA", 16}, {"RoadRunner-myr", 16}, {"NCSA", 64}, {"RoadRunner-myr", 64}} {
			txt, err := bench.Fig1516(res, cell.m, cell.p)
			if err != nil {
				continue // quick mode may not include 64
			}
			fmt.Fprintln(w)
			fmt.Fprint(w, txt)
		}
		return nil
	}},
}

// experimentNames lists the registry, in run order.
func experimentNames() []string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.name
	}
	return names
}

func main() {
	farm.MaybeDaemon() // farmbench re-execs this binary as its daemon image
	outdir := flag.String("outdir", "", "write per-experiment files to this directory instead of stdout")
	quick := flag.Bool("quick", false, "limit processor counts and steps for a fast pass")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: repro [flags] [experiment ...]\n\nexperiments (default: all, in order):\n")
		for _, e := range experiments {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-26s %s\n", e.name, e.desc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	selected := experiments
	if args := flag.Args(); len(args) > 0 {
		byName := map[string]experiment{}
		for _, e := range experiments {
			byName[e.name] = e
		}
		selected = nil
		for _, name := range args {
			e, ok := byName[name]
			if !ok {
				log.Fatalf("unknown experiment %q: registered experiments are %s",
					name, strings.Join(experimentNames(), ", "))
			}
			selected = append(selected, e)
		}
	}

	out := func(name string) (io.WriteCloser, error) {
		if *outdir == "" {
			fmt.Printf("\n===== %s =====\n", name)
			return nopCloser{os.Stdout}, nil
		}
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return nil, err
		}
		return os.Create(filepath.Join(*outdir, name+".txt"))
	}
	for _, e := range selected {
		t0 := time.Now()
		w, err := out(e.name)
		if err != nil {
			log.Fatal(err)
		}
		if err := e.run(w, *quick); err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		w.Close()
		log.Printf("%s done in %v", e.name, time.Since(t0).Round(time.Millisecond))
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }
