// Command repro runs the complete reproduction: every table and figure
// of the paper's evaluation section, written to stdout (or a directory
// with -outdir). Budget-limited modes skip the largest processor
// counts.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"nektar/internal/bench"
)

func main() {
	outdir := flag.String("outdir", "", "write per-experiment files to this directory instead of stdout")
	quick := flag.Bool("quick", false, "limit processor counts and steps for a fast pass")
	flag.Parse()

	out := func(name string) (io.WriteCloser, error) {
		if *outdir == "" {
			fmt.Printf("\n===== %s =====\n", name)
			return nopCloser{os.Stdout}, nil
		}
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return nil, err
		}
		return os.Create(filepath.Join(*outdir, name+".txt"))
	}
	section := func(name string, f func(w io.Writer) error) {
		t0 := time.Now()
		w, err := out(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := f(w); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		w.Close()
		log.Printf("%s done in %v", name, time.Since(t0).Round(time.Millisecond))
	}

	section("fig1-6_kernels", func(w io.Writer) error {
		bench.Fig1Dcopy().Write(w)
		bench.Fig2Daxpy().Write(w)
		bench.Fig3Ddot().Write(w)
		bench.Fig4Dgemv().Write(w)
		bench.Fig5Dgemm().Write(w)
		bench.Fig6DgemmSmall().Write(w)
		return nil
	})
	section("fig7_pingpong", func(w io.Writer) error {
		lat, bw, err := bench.Fig7PingPong()
		if err != nil {
			return err
		}
		lat.Write(w)
		bw.Write(w)
		return nil
	})
	section("fig8_alltoall", func(w io.Writer) error {
		for _, p := range []int{4, 8} {
			fig, err := bench.Fig8Alltoall(p)
			if err != nil {
				return err
			}
			fig.Write(w)
		}
		return nil
	})
	section("table1_fig12_serial", func(w io.Writer) error {
		cfg := bench.PaperSerial
		if *quick {
			cfg = bench.SerialConfig{Nt: 24, Nr: 6, Order: 6, Steps: 1}
		}
		res, _, err := bench.RunSerial(cfg)
		if err != nil {
			return err
		}
		bench.Table1(res).Write(w)
		txt, err := bench.Fig12(res, "Onyx2", "Muses")
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, txt)
		return nil
	})
	section("table2_fig13-14_nektarf", func(w io.Writer) error {
		cfg := bench.PaperFourier
		if *quick {
			cfg.Procs = []int{2, 4, 8, 16}
			cfg.Steps = 1
		}
		res, err := bench.RunFourier(cfg)
		if err != nil {
			return err
		}
		bench.Table2(res, cfg.Procs, cfg.Machines).Write(w)
		for _, cell := range []struct {
			m string
			p int
		}{{"NCSA", 4}, {"SP2-Silver", 4}, {"RoadRunner-eth", 4}, {"RoadRunner-myr", 4}} {
			txt, err := bench.Fig1314(res, cell.m, cell.p)
			if err != nil {
				return err
			}
			fmt.Fprintln(w)
			fmt.Fprint(w, txt)
		}
		return nil
	})
	section("faultbench", func(w io.Writer) error {
		cfg := bench.PaperFaultbench
		if *quick {
			cfg.Procs = 2
			cfg.ProbeNt, cfg.ProbeNr = 6, 2
			cfg.Order = 3
			cfg.Steps = 1
		}
		_, tbl, err := bench.RunFaultbench(cfg)
		if err != nil {
			return err
		}
		tbl.Write(w)
		demo, err := bench.RunFaultbenchRecovery(cfg, 1)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		demo.Write(w)
		return nil
	})
	section("supervise", func(w io.Writer) error {
		cfg := bench.PaperSupervise
		if *quick {
			cfg.Procs = 2
			cfg.Spares = 2
			cfg.Steps = 6
		}
		tbl, err := bench.RunSupervise(cfg)
		if tbl != nil {
			tbl.Write(w)
		}
		return err
	})
	section("table3_fig15-16_nektarale", func(w io.Writer) error {
		cfg := bench.PaperALE
		if *quick {
			cfg.Procs = []int{16, 32}
		}
		res, err := bench.RunALE(cfg)
		if err != nil {
			return err
		}
		bench.Table3(res, cfg.Procs, cfg.Machines).Write(w)
		for _, cell := range []struct {
			m string
			p int
		}{{"NCSA", 16}, {"RoadRunner-myr", 16}, {"NCSA", 64}, {"RoadRunner-myr", 64}} {
			txt, err := bench.Fig1516(res, cell.m, cell.p)
			if err != nil {
				continue // quick mode may not include 64
			}
			fmt.Fprintln(w)
			fmt.Fprint(w, txt)
		}
		return nil
	})
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }
