// Command faultbench answers the fault-tolerance question behind the
// paper's production runs (250 CPU-hours per processor on commodity
// hardware): how often should a run checkpoint? It measures checkpoint
// size and per-step cost with a probe Nektar-F run on the simulated
// cluster, tabulates Young's-model overhead for a sweep of checkpoint
// intervals against node MTBF values, and optionally demonstrates a
// measured crash-recovery round trip (injected node crash, restart
// from the last committed checkpoint).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"nektar/internal/bench"
	"nektar/internal/cliutil"
	"nektar/internal/policy"
)

func main() {
	machine := flag.String("machine", bench.PaperFaultbench.Machine, "simulated machine (see internal/machine)")
	procs := flag.Int("procs", bench.PaperFaultbench.Procs, "processor count")
	disk := flag.Float64("disk", bench.PaperFaultbench.DiskMBs, "node-local disk bandwidth, MB/s")
	intervals := flag.String("intervals", joinInts(bench.PaperFaultbench.IntervalSteps), "comma-separated checkpoint intervals, steps")
	mtbf := flag.String("mtbf", joinFloats(bench.PaperFaultbench.MTBFHours), "comma-separated per-node MTBF values, hours")
	recovery := flag.Bool("recovery", true, "also run the measured crash-recovery demonstration")
	seed := flag.Int64("seed", 1, "fault-plan seed for the recovery demonstration")
	stripe := flag.Bool("stripe", false, "price checkpoints as striped parallel writes (1/P-th shards exchanged over the interconnect) instead of node-local files")
	adapt := flag.String("adapt", "static", "resilience policy; faultbench tabulates the static baseline only (run cmd/adaptbench for the adaptive layer)")
	flag.Parse()

	// Faultbench's offline Young's-model table IS the static baseline
	// the adaptive layer is measured against: accept only -adapt static
	// and point anything else at the live differential benchmark.
	if mode, err := cliutil.PolicyMode(*adapt); err != nil {
		fmt.Fprintf(os.Stderr, "faultbench: %v\n", err)
		os.Exit(2)
	} else if mode != policy.Static {
		fmt.Fprintf(os.Stderr, "faultbench: -adapt %s: this command tabulates the static checkpoint-cadence baseline; the %s policy runs live in cmd/adaptbench\n", mode, mode)
		os.Exit(2)
	}

	cfg := bench.PaperFaultbench
	cfg.Machine = *machine
	cfg.Procs = *procs
	cfg.DiskMBs = *disk
	cfg.Stripe = *stripe
	cfg.IntervalSteps = nil
	for _, s := range strings.Split(*intervals, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultbench: -intervals %q: %q is not an integer step count\n", *intervals, strings.TrimSpace(s))
			os.Exit(2)
		}
		cfg.IntervalSteps = append(cfg.IntervalSteps, v)
	}
	hours, err := cliutil.ParseMTBFHours(*mtbf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultbench: %v\n", err)
		os.Exit(2)
	}
	cfg.MTBFHours = hours

	// Validate up front so a bad flag fails with an actionable message
	// instead of a mid-run panic.
	if err := bench.ValidateFaultbench(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "faultbench: %v\n", err)
		os.Exit(2)
	}

	_, tbl, err := bench.RunFaultbench(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tbl.Write(os.Stdout)
	if *recovery {
		demo, err := bench.RunFaultbenchRecovery(cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		demo.Write(os.Stdout)
	}
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

func joinFloats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.FormatFloat(x, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}
