// Command fftbench microbenchmarks the FFT kernels behind the spectral
// hot path. The first table races the legacy all-radix-2 ladder against
// the mixed-radix Stockham planner at matched power-of-two lengths —
// same transform, same answer, different pass structure. The second
// prices the de-aliasing change: the padded pipeline used to run rows
// of length 2N because radix-2 could reach nothing between, and now
// runs the exact 3/2-rule length 3N/2; the table shows the per-row cost
// on each grid and the modeled padded half-transform reduction, which
// combines the shorter rows with the (N+M)-row count of the pipeline.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"nektar/internal/cliutil"
	"nektar/internal/fft"
	"nektar/internal/report"
)

// fill writes a deterministic bounded signal so every timing run
// transforms identical data.
func fill(x []complex128) {
	for i := range x {
		t := float64(i)
		x[i] = complex(math.Sin(0.7*t+0.3), math.Cos(1.3*t))
	}
}

// timePlan returns host seconds per single row transform: rows batched
// rows per Many call, reps forward+inverse round trips (the round trip
// keeps magnitudes bounded across reps).
func timePlan(p *fft.Plan, rows, reps int) float64 {
	x := make([]complex128, rows*p.N)
	fill(x)
	p.Many(x, rows, false)
	p.Many(x, rows, true)
	t0 := time.Now()
	for r := 0; r < reps; r++ {
		p.Many(x, rows, false)
		p.Many(x, rows, true)
	}
	return time.Since(t0).Seconds() / float64(2*reps*rows)
}

func main() {
	sizes := flag.String("sizes", "64,128,256,512,1024", "comma-separated power-of-two transform lengths")
	rows := flag.Int("rows", 64, "rows per batched Many call")
	reps := flag.Int("reps", 200, "forward+inverse round trips per measurement")
	quick := flag.Bool("quick", false, "small sizes and few reps (CI smoke)")
	prof := cliutil.ProfileFlags(flag.CommandLine)
	flag.Parse()

	if *quick {
		*sizes, *rows, *reps = "16,32,64", 16, 20
	}
	var ns []int
	for _, f := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 8 || n&(n-1) != 0 {
			fmt.Fprintf(os.Stderr, "fftbench: -sizes entry %q is not a power of two >= 8 (the radix-2 leg needs one)\n", f)
			os.Exit(2)
		}
		ns = append(ns, n)
	}
	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "fftbench: %v\n", err)
		os.Exit(2)
	}

	kernel := report.NewTable(
		fmt.Sprintf("FFT kernel: all-radix-2 ladder vs mixed-radix Stockham at matched lengths (%d rows/batch, %d round trips)",
			*rows, *reps),
		"n", "radix-2 ns/row", "mixed ns/row", "speedup")
	for _, n := range ns {
		r2, err := fft.NewRadix2Plan(n)
		if err != nil {
			log.Fatalf("fftbench: %v", err)
		}
		mx, err := fft.NewPlan(n)
		if err != nil {
			log.Fatalf("fftbench: %v", err)
		}
		t2, tm := timePlan(r2, *rows, *reps), timePlan(mx, *rows, *reps)
		kernel.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", t2*1e9), fmt.Sprintf("%.0f", tm*1e9),
			fmt.Sprintf("%.2fx", t2/tm))
	}
	kernel.Write(os.Stdout)

	fmt.Println()
	padded := report.NewTable(
		"De-aliasing rows: legacy 2N radix-2 vs exact 3N/2 mixed-radix (modeled half-transform = (N+M) rows of length M)",
		"N", "2N ns/row", "3N/2 ns/row", "half-transform reduction")
	for _, n := range ns {
		legacy, err := fft.NewRadix2Plan(2 * n)
		if err != nil {
			log.Fatalf("fftbench: %v", err)
		}
		exact, err := fft.NewPlan(3 * n / 2)
		if err != nil {
			log.Fatalf("fftbench: %v", err)
		}
		tl, te := timePlan(legacy, *rows, *reps), timePlan(exact, *rows, *reps)
		red := 1 - (float64(n+exact.N)*te)/(float64(n+legacy.N)*tl)
		padded.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", tl*1e9), fmt.Sprintf("%.0f", te*1e9),
			fmt.Sprintf("%.1f%%", 100*red))
	}
	padded.Write(os.Stdout)

	if err := prof.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "fftbench: %v\n", err)
		os.Exit(2)
	}
}
