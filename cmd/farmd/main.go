// Command farmd serves the crash-safe job farm: an HTTP/JSON service
// whose whole state machine — admission queue, running attempts, retry
// backoffs, results — survives SIGKILL via a write-ahead journal and
// per-job durable checkpoints. Restarting farmd on the same -dir
// replays the journal, re-admits queued jobs, and resumes interrupted
// runs from their newest verified checkpoint.
//
//	farmd -dir /var/lib/nektar-farm -addr :8080 -workers 8
//
// SIGTERM drains gracefully: admissions stop, running jobs checkpoint
// and park, the journal closes clean.
package main

import (
	"os"

	"nektar/internal/farm"
)

func main() {
	farm.MaybeDaemon() // allow use as a re-exec image, harmless otherwise
	os.Exit(farm.DaemonMain(os.Args[1:], nil))
}
