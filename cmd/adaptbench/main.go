// Command adaptbench measures the adaptive resilience layer against
// the static checkpoint-cadence baseline it replaces. For each
// (machine, MTBF regime) cell it runs the same seeded fault campaigns
// under a sweep of static cadences and under the adaptive policy
// (online MTBF estimation driving Young's-formula retuning plus
// runtime writer selection), and reports mean time-to-solution, the
// adaptive-vs-static ratios, and the policy end state. Every campaign
// is audited bit-identical to a fault-free reference. The committed
// baseline BENCH_adapt.json is this sweep at the default
// configuration (`make bench-adapt` regenerates it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"nektar/internal/bench"
	"nektar/internal/cliutil"
)

func main() {
	def := bench.PaperAdaptbench
	machines := flag.String("machines", strings.Join(def.Machines, ","), "comma-separated simulated machines (see internal/machine)")
	procs := flag.Int("procs", def.Procs, "solver rank count (power of two for nsf)")
	spares := flag.Int("spares", def.Spares, "hot-spare node count (at least -procs: the planted hazard spans the spare pool)")
	steps := flag.Int("steps", def.Steps, "solver steps per campaign")
	disk := flag.Float64("disk", def.DiskMBs, "virtual checkpoint store bandwidth, MB/s")
	intervals := flag.String("intervals", joinInts(def.StaticIntervals), "comma-separated static checkpoint cadences to sweep, steps")
	seedEvery := flag.Int("seed-every", def.SeedInterval, "cadence the adaptive controller starts from, steps")
	fracs := flag.String("mtbf-frac", joinFloats(def.MTBFFracs), "comma-separated per-node MTBF regimes, as fractions of the fault-free wall")
	seeds := flag.Int("seeds", def.Seeds, "fault-plan draws averaged per cell")
	seed := flag.Int64("seed", def.Seed, "base fault-plan seed")
	quick := flag.Bool("quick", false, "run the budget configuration (one machine, one regime, one draw)")
	jsonPath := flag.String("json", "", "also write the result as JSON to this file")
	prof := cliutil.ProfileFlags(flag.CommandLine)
	flag.Parse()

	cfg := def
	if *quick {
		cfg = bench.QuickAdaptbench
	} else {
		cfg.Procs = *procs
		cfg.Spares = *spares
		cfg.Steps = *steps
		cfg.DiskMBs = *disk
		cfg.SeedInterval = *seedEvery
		cfg.Seeds = *seeds
		cfg.Seed = *seed
		cfg.Machines = nil
		for _, s := range strings.Split(*machines, ",") {
			cfg.Machines = append(cfg.Machines, strings.TrimSpace(s))
		}
		cfg.StaticIntervals = nil
		for _, s := range strings.Split(*intervals, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "adaptbench: -intervals %q: %q is not an integer step count\n", *intervals, strings.TrimSpace(s))
				os.Exit(2)
			}
			cfg.StaticIntervals = append(cfg.StaticIntervals, v)
		}
		cfg.MTBFFracs = nil
		for _, s := range strings.Split(*fracs, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "adaptbench: -mtbf-frac %q: %q is not a number\n", *fracs, strings.TrimSpace(s))
				os.Exit(2)
			}
			cfg.MTBFFracs = append(cfg.MTBFFracs, v)
		}
	}

	// Validate up front so a bad flag fails with an actionable message
	// instead of a mid-run panic.
	if err := bench.ValidateAdaptbench(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "adaptbench: %v\n", err)
		os.Exit(2)
	}

	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "adaptbench: %v\n", err)
		os.Exit(2)
	}
	res, tbl, err := bench.RunAdaptbench(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := prof.Stop(); err != nil {
		log.Fatal(err)
	}
	tbl.Write(os.Stdout)
	fmt.Printf("\nadaptive vs best static, worst cell: %+.1f%%; vs worst static, best cell: %.1f%% faster\n",
		100*(res.MaxVsBest-1), 100*res.MaxGainVsWorst)
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

func joinFloats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.FormatFloat(x, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}
