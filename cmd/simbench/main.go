// Command simbench measures what the host-parallel simnet scheduler
// buys: each cell runs one registered workload at one rank count under
// the serial and the parallel scheduler, verifies the two runs agree
// bit-for-bit on every rank's virtual clocks, and reports the real
// host wall-clock of both with the speedup. GOMAXPROCS and the host
// core count are printed alongside, since they bound the speedup.
//
// -scale appends the relaxed-scheduler capacity sweep (the PMS and
// Tanaka interconnect models at P=64..1024). -out writes the combined
// result as the BENCH_simnet.json baseline; overwriting from a 1-core
// host is refused unless -force, because core-starved speedups are
// noise, not a baseline.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"nektar/internal/bench"
	"nektar/internal/cliutil"
)

// parseCells turns "nsf:8,nsf:32,nsale:16" into the sweep cells.
func parseCells(s string) ([]bench.SimbenchCell, error) {
	var cells []bench.SimbenchCell
	for _, part := range strings.Split(s, ",") {
		wl, ps, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("cell %q: want workload:procs", part)
		}
		p, err := strconv.Atoi(ps)
		if err != nil {
			return nil, fmt.Errorf("cell %q: %v", part, err)
		}
		cells = append(cells, bench.SimbenchCell{Workload: wl, Procs: p})
	}
	return cells, nil
}

func defaultCells() string {
	parts := make([]string, len(bench.PaperSimbench.Cells))
	for i, c := range bench.PaperSimbench.Cells {
		parts[i] = fmt.Sprintf("%s:%d", c.Workload, c.Procs)
	}
	return strings.Join(parts, ",")
}

func main() {
	cellsFlag := flag.String("cells", defaultCells(), "comma-separated workload:procs cells")
	steps := flag.Int("steps", bench.PaperSimbench.Steps, "solver steps per run")
	scale := flag.Bool("scale", false, "also run the relaxed-scheduler capacity sweep (PMS/Tanaka, P=64..1024)")
	out := flag.String("out", "", "write the result as a BENCH_simnet.json baseline to this file")
	force := flag.Bool("force", false, "allow -out to overwrite the baseline from a 1-core host")
	prof := cliutil.ProfileFlags(flag.CommandLine)
	flag.Parse()

	cells, err := parseCells(*cellsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(2)
	}
	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(2)
	}

	res, tbl, err := bench.RunSimbench(bench.SimbenchConfig{Cells: cells, Steps: *steps})
	if err != nil {
		log.Fatal(err)
	}
	tbl.Write(os.Stdout)
	if *scale {
		scaleRes, scaleTbl, err := bench.RunScalebench(bench.PaperScalebench)
		if err != nil {
			log.Fatal(err)
		}
		res.Scale = scaleRes
		fmt.Println()
		scaleTbl.Write(os.Stdout)
	}

	if err := prof.Stop(); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		if err := bench.WriteSimnetBaseline(*out, res, *force); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("\nwrote %s (GOMAXPROCS=%d, host cores=%d)\n", *out, res.GoMaxProcs, res.NumCPU)
	}
}
