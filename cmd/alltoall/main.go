// Command alltoall regenerates the paper's Figure 8: MPI_Alltoall
// average bandwidth for 4 and 8 processors on every simulated network.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
)

import "nektar/internal/bench"

func main() {
	procs := flag.Int("p", 0, "processor count (0 = both 4 and 8, as in the paper)")
	flag.Parse()
	ps := []int{4, 8}
	if *procs > 0 {
		ps = []int{*procs}
	}
	for _, p := range ps {
		fig, err := bench.Fig8Alltoall(p)
		if err != nil {
			log.Fatal(err)
		}
		fig.Write(os.Stdout)
		fmt.Println()
	}
}
