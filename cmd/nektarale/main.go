// Command nektarale regenerates the paper's Table 3 (Nektar-ALE 3D
// flapping-wing CPU/wall-clock per step) and Figures 15-16 (region
// breakdowns a/b/c).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"nektar/internal/bench"
	"nektar/internal/cliutil"
)

func main() {
	machines := flag.String("machines", strings.Join(bench.PaperALE.Machines, ","), "comma-separated machine list")
	procs := flag.String("procs", "16,32,64,128", "comma-separated processor counts")
	stages := flag.Bool("stages", false, "print Figures 15-16 region breakdowns")
	trace := flag.String("trace", "", "write the engine's per-step JSONL event stream (all cells, all ranks) to this file")
	ckptDir := flag.String("ckptdir", "", "write per-cell durable checkpoints under this directory (simulated write cost)")
	ckptEvery := flag.Int("ckpt-every", 0, "checkpoint cadence in steps (requires -ckptdir)")
	flag.Parse()

	cfg := bench.PaperALE
	cfg.Machines = strings.Split(*machines, ",")
	tracer, closeTrace, err := cliutil.Tracer(*trace)
	if err != nil {
		log.Fatal(err)
	}
	defer closeTrace()
	cfg.Trace = tracer
	if err := cliutil.CheckpointFlags(*ckptDir, *ckptEvery); err != nil {
		log.Fatal(err)
	}
	cfg.CkptDir, cfg.CkptEvery = *ckptDir, *ckptEvery
	cfg.Procs = nil
	for _, p := range strings.Split(*procs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			log.Fatal(err)
		}
		cfg.Procs = append(cfg.Procs, v)
	}
	res, err := bench.RunALE(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bench.Table3(res, cfg.Procs, cfg.Machines).Write(os.Stdout)
	if *stages {
		for _, cell := range []struct {
			m string
			p int
		}{{"NCSA", 16}, {"RoadRunner-myr", 16}, {"NCSA", 64}, {"RoadRunner-myr", 64}} {
			out, err := bench.Fig1516(res, cell.m, cell.p)
			if err != nil {
				continue
			}
			fmt.Println()
			fmt.Print(out)
		}
	}
}
