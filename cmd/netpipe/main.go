// Command netpipe regenerates the paper's Figure 7: NetPIPE-style
// ping-pong latency and bandwidth curves on every simulated network.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nektar/internal/bench"
)

func main() {
	flag.Parse()
	lat, bw, err := bench.Fig7PingPong()
	if err != nil {
		log.Fatal(err)
	}
	lat.Write(os.Stdout)
	fmt.Println()
	bw.Write(os.Stdout)
}
