// Flappingwing: the paper's Nektar-ALE configuration — a heaving
// NACA 4420 wing section in a 3D domain, with the mesh deforming every
// step (arbitrary Lagrangian-Eulerian formulation), domain-decomposed
// over a simulated 4-processor cluster with gather-scatter
// communication and diagonally preconditioned conjugate gradient
// solves.
//
//	go run ./examples/flappingwing
package main

import (
	"fmt"
	"log"
	"math"

	"nektar/internal/core"
	"nektar/internal/machine"
	"nektar/internal/mesh"
	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

func main() {
	mach, err := machine.ByName("NCSA")
	if err != nil {
		log.Fatal(err)
	}
	const procs = 4
	fmt.Printf("Nektar-ALE on simulated %s, %d processors\n\n", mach.Name, procs)

	_, _, err = simnet.Run(procs, mach.Net, func(n *simnet.Node) {
		comm := mpi.World(n)
		m2, err := mesh.WingSection(2, 16, 3)
		if err != nil {
			panic(err)
		}
		m3, err := mesh.ExtrudeQuads(m2, 2, 2, 0, 1)
		if err != nil {
			panic(err)
		}
		ns, err := core.NewNSALE(m3, core.ALEConfig{
			Nu: 0.02, Dt: 5e-3, Order: 2,
			FarfieldVel: [3]float64{1, 0, 0},
			WallVelocity: func(t float64) [3]float64 {
				return [3]float64{0, 0.4 * math.Cos(4*math.Pi*t), 0}
			},
			MoveMesh: true,
		}, comm, &mach.CPU)
		if err != nil {
			panic(err)
		}
		if comm.Rank() == 0 {
			fmt.Printf("wing mesh: %d hex elements, order %d; my rank owns %d\n\n",
				len(m3.Elems), m3.Order, len(ns.Own))
			fmt.Println(" step     t     KE        PCG iters (p/v)   wing y    drag      lift")
		}
		ns.SetUniformInitial(1, 0, 0)
		for i := 1; i <= 8; i++ {
			ns.Step()
			ke := ns.KineticEnergy()
			f := ns.Forces()
			if comm.Rank() == 0 {
				fmt.Printf("%5d  %5.3f  %8.4f   %5d / %-5d   %+.4f  %8.4f  %+8.4f\n",
					i, ns.Time(), ke, ns.ItersPressure, ns.ItersViscous,
					ns.M.Verts[0][1], f[0], f[1])
			}
		}
		if comm.Rank() == 0 {
			fmt.Println("\nThe wing vertices heave with the prescribed motion while the")
			fmt.Println("flow adjusts; every step re-tabulates the moved mesh geometry.")
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
