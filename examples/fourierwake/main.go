// Fourierwake: the paper's Nektar-F configuration — a 3D wake with one
// homogeneous (spanwise) direction run on a simulated 4-processor
// Myrinet cluster, one complex Fourier mode per processor. A small 3D
// disturbance is seeded and its modal energy tracked; the simulated
// MPI_Wtime/clock() gap shows the communication cost of the Alltoall
// transposes.
//
//	go run ./examples/fourierwake
package main

import (
	"fmt"
	"log"

	"nektar/internal/core"
	"nektar/internal/machine"
	"nektar/internal/mesh"
	"nektar/internal/mpi"
	"nektar/internal/simnet"
)

func main() {
	mach, err := machine.ByName("RoadRunner-myr")
	if err != nil {
		log.Fatal(err)
	}
	const procs = 4
	fmt.Printf("Nektar-F on simulated %s, %d processors (%d Fourier planes)\n\n",
		mach.Name, procs, 2*procs)

	energies := make([][]float64, procs)
	wall, cpu, err := simnet.Run(procs, mach.Net, func(n *simnet.Node) {
		comm := mpi.World(n)
		m, err := mesh.BluffBody(4, 16, 4)
		if err != nil {
			panic(err)
		}
		ns, err := core.NewNSF(m, core.NSFConfig{
			Nu: 0.01, Dt: 4e-3, Order: 2, Lz: 6.283185307179586,
			VelDirichlet: map[string]core.VelBC{
				"wall":   core.ConstantVel(0, 0),
				"inflow": core.ConstantVel(1, 0),
				"side":   core.ConstantVel(1, 0),
			},
			PresDirichlet: map[string]bool{"outflow": true},
		}, comm, &mach.CPU)
		if err != nil {
			panic(err)
		}
		ns.SetUniformInitial(1, 0)
		ns.PerturbMode(1e-3)
		var hist []float64
		for i := 0; i < 10; i++ {
			ns.Step()
			hist = append(hist, ns.ModeEnergy())
		}
		energies[comm.Rank()] = hist
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mode-energy history per Fourier mode (rank k holds mode k):")
	for k, hist := range energies {
		fmt.Printf("  mode %d: %9.3e -> %9.3e\n", k, hist[0], hist[len(hist)-1])
	}
	fmt.Println("\nsimulated timings per rank (the paper's clock vs MPI_Wtime):")
	for r := range wall {
		fmt.Printf("  rank %d: cpu %6.3fs  wall %6.3fs  (idle %4.1f%%)\n",
			r, cpu[r], wall[r], 100*(wall[r]-cpu[r])/wall[r])
	}
}
