// Cylinder: the paper's serial benchmark configuration at a laptop
// scale — impulsively started flow past a circular cylinder at
// Re = 100, integrated with the stiffly-stable splitting scheme.
// Prints kinetic energy, divergence and the drag/lift forces.
//
//	go run ./examples/cylinder
package main

import (
	"fmt"
	"log"
	"os"

	"nektar/internal/core"
	"nektar/internal/mesh"
)

func main() {
	m, err := mesh.BluffBody(5, 24, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bluff-body O-grid: %d elements, order %d, %d local dofs/field\n",
		len(m.Elems), m.Order, m.TotalDof())

	ns, err := core.NewNS2D(m, core.NS2DConfig{
		Nu: 0.01, Dt: 4e-3, Order: 2,
		VelDirichlet: map[string]core.VelBC{
			"wall":   core.ConstantVel(0, 0),
			"inflow": core.ConstantVel(1, 0),
			"side":   core.ConstantVel(1, 0),
		},
		PresDirichlet: map[string]bool{"outflow": true},
	})
	if err != nil {
		log.Fatal(err)
	}
	ns.SetUniformInitial(1, 0)

	fmt.Println("\n step     t      KE        max|div u|   drag      lift")
	for i := 1; i <= 50; i++ {
		ns.Step()
		if i%10 == 0 {
			fx, fy := ns.Forces()
			fmt.Printf("%5d  %5.2f  %9.4f  %9.2e  %8.4f  %8.4f\n",
				i, float64(i)*ns.Cfg.Dt, ns.KineticEnergy(), ns.MaxDivergence(), fx, fy)
		}
	}
	fmt.Println("\nDrag settles as the impulsive-start boundary layer develops.")

	// Dump the final field for plotting (x y u v p columns).
	f, err := os.Create("cylinder_field.txt")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := ns.WriteField(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wake field written to cylinder_field.txt")
}
