// Quickstart: solve a Helmholtz problem with the spectral/hp element
// library and verify spectral convergence — the smallest end-to-end
// use of the mesh, assembly and direct-solver layers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"nektar/internal/mesh"
	"nektar/internal/solver"
)

func main() {
	// Manufactured solution of -Lap(u) + u = f on [0,1]^2 with
	// Dirichlet boundaries.
	uex := func(x, y float64) float64 { return math.Sin(math.Pi*x) * math.Exp(y) }
	f := func(x, y, z float64) float64 {
		// -Lap(u) + u = (pi^2 - 1 + 1) u = pi^2 * u.
		return math.Pi * math.Pi * uex(x, y)
	}

	fmt.Println("order   dofs    L2 error")
	for order := 2; order <= 10; order += 2 {
		m, err := mesh.RectQuad(order, 2, 2, 0, 1, 0, 1,
			func(x, y, z float64) string { return "dirichlet" })
		if err != nil {
			log.Fatal(err)
		}
		a := mesh.NewAssembly(m, func(tag string) bool { return tag == "dirichlet" })
		helm, err := solver.NewCondensed(a, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		rhs := solver.WeakRHSFunc(a, f)
		dir := solver.DirichletFromFunc(a, func(string) bool { return true },
			func(x, y float64) float64 { return uex(x, y) })
		u := helm.Solve(rhs, dir)
		e := solver.L2Error(a, u, func(x, y, z float64) float64 { return uex(x, y) })
		fmt.Printf("%5d  %5d    %.3e\n", order, a.NGlobal, e)
	}
	fmt.Println("\nThe error decays exponentially with order: p-refinement at work.")
}
