// Package nektar is a pure-Go reproduction of "Direct Numerical
// Simulation of Turbulence with a PC/Linux Cluster: Fact or Fiction?"
// (Karamanos, Evangelinos, Boes, Kirby & Karniadakis, SC '99).
//
// The repository contains, from scratch:
//
//   - a BLAS/LAPACK subset (internal/blas, internal/lapack) including
//     the banded Cholesky solvers the paper's DNS spends 60% of its
//     time in;
//   - the spectral/hp element method of Karniadakis & Sherwin
//     (internal/jacobi, internal/basis, internal/mesh,
//     internal/solver) with modal bases on triangles, quadrilaterals
//     and hexahedra, static condensation, and sum-factorized
//     transforms;
//   - a deterministic discrete-event cluster simulator with an MPI
//     layer (internal/simnet, internal/mpi) standing in for the
//     paper's ten machines, whose calibrated models live in
//     internal/machine;
//   - the Nektar solvers (internal/core): the serial 2D Navier-Stokes
//     benchmark, the Fourier-parallel Nektar-F, and the moving-mesh
//     Nektar-ALE with METIS-style partitioning (internal/partition)
//     and the Tufo-Fischer gather-scatter library (internal/gs);
//   - harnesses regenerating every table and figure of the paper's
//     evaluation (internal/netpipe, internal/bench, cmd/...).
//
// See README.md for the layout, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results.
package nektar
