module nektar

go 1.22
